#include "dualindex/ddim_index.h"

#include <algorithm>
#include <cmath>

#include "constraint/refine_batch.h"
#include "geometry/polyhedron2d.h"
#include "obs/metrics.h"

namespace cdb {

namespace {

constexpr size_t kNpos = static_cast<size_t>(-1);
constexpr double kInf = std::numeric_limits<double>::infinity();

// Handicap slot convention for the d-dimensional trees: one cell per tree,
// so only the "prev" pair is used — slot 0 (min-combined, bounds upward
// first sweeps) and slot 2 (max-combined, bounds downward first sweeps).
constexpr int kLowSlot = 0;
constexpr int kHighSlot = 2;

// First sweep: collects every entry with key >= b (upward) or key <= b
// (downward), folding the handicap bound over all visited leaves when
// slot >= 0.
Status SweepTree(BPlusTree* tree, double b, bool upward, int slot,
                 std::vector<TupleId>* out, double* bound,
                 QueryStats* stats, const QueryContext* ctx) {
  LeafCursor cur;
  CDB_RETURN_IF_ERROR(tree->SeekLeaf(b, &cur));
  if (bound != nullptr) *bound = upward ? kInf : -kInf;
  bool first = true;
  while (cur.valid()) {
    // Deadline/cancellation checkpoint, once per leaf (= one page fetch).
    // The cursor holds no pins between moves, so this early exit is
    // pin-clean by construction.
    CDB_RETURN_IF_ERROR(CheckQueryContext(ctx));
    if (slot >= 0 && bound != nullptr) {
      double h = cur.handicap(slot);
      *bound = upward ? std::min(*bound, h) : std::max(*bound, h);
    }
    if (upward) {
      for (int j = first ? cur.seek_pos() : 0; j < cur.entry_count(); ++j) {
        out->push_back(cur.value(j));
        if (stats != nullptr) ++stats->candidates;
      }
      CDB_RETURN_IF_ERROR(cur.NextLeaf());
    } else {
      int limit = cur.entry_count();
      if (first) {
        limit = cur.seek_pos();
        for (int j = cur.seek_pos();
             j < cur.entry_count() && cur.key(j) == b; ++j) {
          out->push_back(cur.value(j));
          if (stats != nullptr) ++stats->candidates;
        }
      }
      for (int j = 0; j < limit; ++j) {
        out->push_back(cur.value(j));
        if (stats != nullptr) ++stats->candidates;
      }
      CDB_RETURN_IF_ERROR(cur.PrevLeaf());
    }
    first = false;
  }
  return Status::OK();
}

// Second sweep: the opposite direction, bounded by the handicap value
// (see DualIndex::SweepSecond; keys equal to b belong to the first sweep).
Status SweepSecondTree(BPlusTree* tree, double b, bool downward, double bound,
                       std::vector<TupleId>* out, QueryStats* stats,
                       const QueryContext* ctx) {
  LeafCursor cur;
  CDB_RETURN_IF_ERROR(tree->SeekLeaf(b, &cur));
  bool first = true;
  while (cur.valid()) {
    CDB_RETURN_IF_ERROR(CheckQueryContext(ctx));
    if (downward) {
      int start = first ? cur.seek_pos() - 1 : cur.entry_count() - 1;
      for (int j = start; j >= 0; --j) {
        if (cur.key(j) < bound) return Status::OK();
        out->push_back(cur.value(j));
        if (stats != nullptr) ++stats->candidates;
      }
      CDB_RETURN_IF_ERROR(cur.PrevLeaf());
    } else {
      for (int j = first ? cur.seek_pos() : 0; j < cur.entry_count(); ++j) {
        if (cur.key(j) == b) continue;
        if (cur.key(j) > bound) return Status::OK();
        out->push_back(cur.value(j));
        if (stats != nullptr) ++stats->candidates;
      }
      CDB_RETURN_IF_ERROR(cur.NextLeaf());
    }
    first = false;
  }
  return Status::OK();
}

double Dist2(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0;
  for (size_t i = 0; i < a.size(); ++i) s += (a[i] - b[i]) * (a[i] - b[i]);
  return s;
}

}  // namespace

Status DDimDualIndex::Create(Pager* pager, RelationD* relation,
                             std::vector<std::vector<double>> slope_points,
                             std::unique_ptr<DDimDualIndex>* out) {
  if (slope_points.empty()) {
    return Status::InvalidArgument("slope point set must be non-empty");
  }
  for (const auto& p : slope_points) {
    if (p.size() != relation->dim() - 1) {
      return Status::InvalidArgument("slope point has wrong dimension");
    }
  }
  std::unique_ptr<DDimDualIndex> index(
      new DDimDualIndex(pager, relation, std::move(slope_points)));
  const size_t k = index->slope_points_.size();
  index->up_.resize(k);
  index->down_.resize(k);
  for (size_t i = 0; i < k; ++i) {
    CDB_RETURN_IF_ERROR(BPlusTree::Create(pager, &index->up_[i]));
    CDB_RETURN_IF_ERROR(BPlusTree::Create(pager, &index->down_[i]));
  }
  index->BuildVoronoiCells();
  // Two-phase bulk load (see DualIndex::Build): keys first, handicaps on
  // the settled leaf structure.
  CDB_RETURN_IF_ERROR(relation->ForEach(
      [&](TupleId id, const GeneralizedTupleD& tuple) -> Status {
        return index->IndexTuple(id, tuple);
      }));
  CDB_RETURN_IF_ERROR(relation->ForEach(
      [&](TupleId, const GeneralizedTupleD& tuple) -> Status {
        return index->FoldHandicapsD(tuple);
      }));
  *out = std::move(index);
  return Status::OK();
}

void DDimDualIndex::BuildVoronoiCells() {
  cell_vertices_.clear();
  if (relation_->dim() != 3 || slope_points_.size() < 2) return;

  // Bounding box of S in the 2-D slope plane.
  double xlo = kInf, xhi = -kInf, ylo = kInf, yhi = -kInf;
  for (const auto& s : slope_points_) {
    xlo = std::min(xlo, s[0]);
    xhi = std::max(xhi, s[0]);
    ylo = std::min(ylo, s[1]);
    yhi = std::max(yhi, s[1]);
  }

  cell_vertices_.resize(slope_points_.size());
  for (size_t i = 0; i < slope_points_.size(); ++i) {
    const auto& si = slope_points_[i];
    std::vector<Constraint2D> cons;
    // Bisector half-planes |p - s_i|^2 <= |p - s_j|^2.
    for (size_t j = 0; j < slope_points_.size(); ++j) {
      if (j == i) continue;
      const auto& sj = slope_points_[j];
      double a = 2 * (sj[0] - si[0]);
      double b = 2 * (sj[1] - si[1]);
      double c = (si[0] * si[0] + si[1] * si[1]) -
                 (sj[0] * sj[0] + sj[1] * sj[1]);
      cons.emplace_back(a, b, c, Cmp::kLE);
    }
    // Clip to the bounding box of S (queries beyond it use T1).
    cons.emplace_back(1, 0, -xhi, Cmp::kLE);
    cons.emplace_back(1, 0, -xlo, Cmp::kGE);
    cons.emplace_back(0, 1, -yhi, Cmp::kLE);
    cons.emplace_back(0, 1, -ylo, Cmp::kGE);

    Polyhedron2D cell = Polyhedron2D::FromConstraints(cons);
    for (const Vec2& v : cell.vertices) {
      cell_vertices_[i].push_back({v.x, v.y});
    }
    // Degenerate cells (collinear S) may have < 3 vertices; always include
    // the site itself so the assignment never under-covers the exact point.
    cell_vertices_[i].push_back({si[0], si[1]});
  }
}

Status DDimDualIndex::IndexTuple(TupleId id, const GeneralizedTupleD& tuple) {
  const size_t k = slope_points_.size();
  std::vector<double> tops(k), bots(k);
  for (size_t i = 0; i < k; ++i) {
    tops[i] = TopValueD(tuple.constraints(), slope_points_[i]);
    bots[i] = BotValueD(tuple.constraints(), slope_points_[i]);
    if (std::isnan(tops[i]) || std::isnan(bots[i])) {
      return Status::InvalidArgument("unsatisfiable tuple cannot be indexed");
    }
  }
  for (size_t i = 0; i < k; ++i) {
    CDB_RETURN_IF_ERROR(up_[i]->Insert(tops[i], id));
    CDB_RETURN_IF_ERROR(down_[i]->Insert(bots[i], id));
  }
  return Status::OK();
}

Status DDimDualIndex::FoldHandicapsD(const GeneralizedTupleD& tuple) {
  if (cell_vertices_.empty()) return Status::OK();  // d != 3.
  for (size_t i = 0; i < slope_points_.size(); ++i) {
    double key_top = TopValueD(tuple.constraints(), slope_points_[i]);
    double key_bot = BotValueD(tuple.constraints(), slope_points_[i]);
    // Extrema of the dual surfaces over the cell: TOP is convex and BOT
    // concave over the slope plane, so both extrema sit on cell vertices.
    double top_max = -kInf, bot_min = kInf;
    for (const auto& v : cell_vertices_[i]) {
      top_max = std::max(top_max, TopValueD(tuple.constraints(), v));
      bot_min = std::min(bot_min, BotValueD(tuple.constraints(), v));
    }
    // EXIST(q(>=)) on up[i]: assignment max TOP over cell (exact).
    CDB_RETURN_IF_ERROR(up_[i]->MergeHandicap(top_max, kLowSlot, key_top));
    // ALL(q(<=)) on up[i]: lower bound of min TOP over cell — min BOT is a
    // safe dominated bound (paper-style cross-surface assignment).
    CDB_RETURN_IF_ERROR(up_[i]->MergeHandicap(bot_min, kHighSlot, key_top));
    // ALL(q(>=)) on down[i]: upper bound of max BOT over cell via max TOP.
    CDB_RETURN_IF_ERROR(down_[i]->MergeHandicap(top_max, kLowSlot, key_bot));
    // EXIST(q(<=)) on down[i]: min BOT over cell (exact).
    CDB_RETURN_IF_ERROR(down_[i]->MergeHandicap(bot_min, kHighSlot, key_bot));
  }
  return Status::OK();
}

Result<TupleId> DDimDualIndex::Insert(const GeneralizedTupleD& tuple) {
  if (tuple.dim() != relation_->dim()) {
    return Status::InvalidArgument("tuple dimension mismatch");
  }
  if (!IsSatisfiableD(tuple.constraints(), tuple.dim())) {
    return Status::InvalidArgument("unsatisfiable tuple cannot be indexed");
  }
  Result<TupleId> id = relation_->Insert(tuple);
  if (!id.ok()) return id.status();
  Status st = IndexTuple(id.value(), tuple);
  if (st.ok()) st = FoldHandicapsD(tuple);
  if (!st.ok()) {
    relation_->Delete(id.value()).ok();
    return st;
  }
  return id;
}

size_t DDimDualIndex::FindExact(const std::vector<double>& p) const {
  for (size_t i = 0; i < slope_points_.size(); ++i) {
    if (slope_points_[i] == p) return i;
  }
  return kNpos;
}

std::vector<size_t> DDimDualIndex::FindCoveringSimplex(
    const std::vector<double>& p) const {
  // Feasibility LP: lambda >= 0, sum lambda = 1, sum lambda_j * s_j = p.
  // A basic feasible solution has at most d non-zero coefficients
  // (Caratheodory), which the simplex solver returns naturally.
  const size_t k = slope_points_.size();
  const size_t m = p.size();
  std::vector<ConstraintD> cons;
  for (size_t j = 0; j < k; ++j) {
    std::vector<double> e(k, 0.0);
    e[j] = 1.0;
    cons.emplace_back(e, 0.0, Cmp::kGE);  // lambda_j >= 0.
  }
  std::vector<double> ones(k, 1.0);
  cons.emplace_back(ones, -1.0, Cmp::kLE);  // sum lambda <= 1
  cons.emplace_back(ones, -1.0, Cmp::kGE);  // sum lambda >= 1
  for (size_t t = 0; t < m; ++t) {
    std::vector<double> row(k);
    for (size_t j = 0; j < k; ++j) row[j] = slope_points_[j][t];
    cons.emplace_back(row, -p[t], Cmp::kLE);
    cons.emplace_back(row, -p[t], Cmp::kGE);
  }
  LpDResult r = MaximizeLinearD(cons, std::vector<double>(k, 0.0));
  if (r.status != LpStatus::kOptimal) return {};
  std::vector<size_t> support;
  for (size_t j = 0; j < k; ++j) {
    if (r.point[j] > 1e-9) support.push_back(j);
  }
  return support;
}

Status DDimDualIndex::RunExact(size_t slope_idx, SelectionType type, Cmp cmp,
                               double intercept, std::vector<TupleId>* out,
                               QueryStats* stats, const QueryContext* ctx) {
  BPlusTree* tree;
  if (type == SelectionType::kExist) {
    tree = cmp == Cmp::kGE ? up_[slope_idx].get() : down_[slope_idx].get();
  } else {
    tree = cmp == Cmp::kGE ? down_[slope_idx].get() : up_[slope_idx].get();
  }
  return SweepTree(tree, intercept, /*upward=*/cmp == Cmp::kGE, /*slot=*/-1,
                   out, nullptr, stats, ctx);
}

Status DDimDualIndex::Refine(SelectionType type, const HalfPlaneQueryD& q,
                             std::vector<TupleId>* ids, QueryStats* st,
                             const QueryContext* ctx) {
  static obs::Counter* const lp_calls =
      obs::GlobalMetrics().counter("ddim.refine.lp_calls");
  return RefinePageClustered<RelationD, GeneralizedTupleD>(
      *relation_, lp_calls, ctx, ids, &st->filter, &st->false_hits,
      [&](const GeneralizedTupleD& tuple) {
        return type == SelectionType::kAll
                   ? ExactAllD(tuple.constraints(), q)
                   : ExactExistD(tuple.constraints(), q);
      },
      // Substrate resolved once per query (a toggle flip mid-query must
      // not tear this query's FilterCounts across both loops).
      RefineBatchingEnabled());
}

Result<std::vector<TupleId>> DDimDualIndex::SelectT1(SelectionType type,
                                                     const HalfPlaneQueryD& q,
                                                     QueryStats* st,
                                                     const QueryContext* ctx) {
  std::vector<size_t> simplex = FindCoveringSimplex(q.slope);
  if (simplex.empty()) {
    return Status::NotSupported(
        "query slope point outside the convex hull of S");
  }
  // ALL runs as ALL on the nearest simplex corner + EXIST on the others;
  // EXIST as EXIST everywhere (Section 4.4 / DESIGN.md coverage argument).
  size_t all_idx = simplex[0];
  if (type == SelectionType::kAll) {
    for (size_t j : simplex) {
      if (Dist2(slope_points_[j], q.slope) <
          Dist2(slope_points_[all_idx], q.slope)) {
        all_idx = j;
      }
    }
  }
  std::vector<TupleId> ids;
  {
    CDB_TRACE_SPAN("filter");
    for (size_t j : simplex) {
      SelectionType app_type =
          (type == SelectionType::kAll && j == all_idx)
              ? SelectionType::kAll
              : SelectionType::kExist;
      CDB_RETURN_IF_ERROR(
          RunExact(j, app_type, q.cmp, q.intercept, &ids, st, ctx));
    }
    std::sort(ids.begin(), ids.end());
    size_t before_dedup = ids.size();
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    st->duplicates += before_dedup - ids.size();
    st->filter.dedup_dropped += before_dedup - ids.size();
  }
  CDB_RETURN_IF_ERROR(Refine(type, q, &ids, st, ctx));
  return ids;
}

Result<std::vector<TupleId>> DDimDualIndex::SelectT2(SelectionType type,
                                                     const HalfPlaneQueryD& q,
                                                     QueryStats* st,
                                                     const QueryContext* ctx) {
  // Applicability: d == 3 with precomputed cells, query slope point inside
  // the bounding box of S (the cells tile exactly that box).
  bool applicable = !cell_vertices_.empty();
  if (applicable) {
    double xlo = kInf, xhi = -kInf, ylo = kInf, yhi = -kInf;
    for (const auto& s : slope_points_) {
      xlo = std::min(xlo, s[0]);
      xhi = std::max(xhi, s[0]);
      ylo = std::min(ylo, s[1]);
      yhi = std::max(yhi, s[1]);
    }
    applicable = q.slope[0] >= xlo && q.slope[0] <= xhi &&
                 q.slope[1] >= ylo && q.slope[1] <= yhi;
  }
  if (!applicable) {
    st->used_wrap_fallback = true;
    return SelectT1(type, q, st, ctx);
  }

  // Nearest site: the query point lies in its Voronoi cell by definition.
  size_t nearest = 0;
  for (size_t i = 1; i < slope_points_.size(); ++i) {
    if (Dist2(slope_points_[i], q.slope) <
        Dist2(slope_points_[nearest], q.slope)) {
      nearest = i;
    }
  }

  BPlusTree* tree;
  bool sweep_up;
  int slot;
  if (type == SelectionType::kExist) {
    if (q.cmp == Cmp::kGE) {
      tree = up_[nearest].get();
      sweep_up = true;
      slot = kLowSlot;
    } else {
      tree = down_[nearest].get();
      sweep_up = false;
      slot = kHighSlot;
    }
  } else {
    if (q.cmp == Cmp::kGE) {
      tree = down_[nearest].get();
      sweep_up = true;
      slot = kLowSlot;
    } else {
      tree = up_[nearest].get();
      sweep_up = false;
      slot = kHighSlot;
    }
  }

  std::vector<TupleId> ids;
  {
    CDB_TRACE_SPAN("filter");
    double bound = 0.0;
    {
      CDB_TRACE_SPAN("sweep/first");
      CDB_RETURN_IF_ERROR(
          SweepTree(tree, q.intercept, sweep_up, slot, &ids, &bound, st, ctx));
    }
    if (sweep_up ? bound < q.intercept : bound > q.intercept) {
      CDB_TRACE_SPAN("sweep/second");
      CDB_RETURN_IF_ERROR(SweepSecondTree(tree, q.intercept,
                                          /*downward=*/sweep_up, bound, &ids,
                                          st, ctx));
    }
    std::sort(ids.begin(), ids.end());
  }
  CDB_RETURN_IF_ERROR(Refine(type, q, &ids, st, ctx));
  return ids;
}

Result<std::vector<TupleId>> DDimDualIndex::Select(SelectionType type,
                                                   const HalfPlaneQueryD& q,
                                                   Method method,
                                                   QueryStats* stats,
                                                   obs::ExplainProfile* profile,
                                                   const QueryContext* ctx) {
  if (q.dim() != relation_->dim()) {
    return Status::InvalidArgument("query dimension mismatch");
  }
  QueryStats local;
  QueryStats* st = stats != nullptr ? stats : &local;
  *st = QueryStats();
  obs::Tracer tracer("ddim/select", pager_, relation_->pager());

  Result<std::vector<TupleId>> result = [&]() -> Result<std::vector<TupleId>> {
    size_t exact = FindExact(q.slope);
    if (exact != kNpos) {
      CDB_TRACE_SPAN("sweep/exact");
      std::vector<TupleId> ids;
      Status s = RunExact(exact, type, q.cmp, q.intercept, &ids, st, ctx);
      if (!s.ok()) return s;
      std::sort(ids.begin(), ids.end());
      st->filter.early_accepts += ids.size();  // Exact sweep: no refinement.
      return ids;
    }
    switch (method) {
      case Method::kExactOnly:
        return Status::InvalidArgument("query slope point not in S");
      case Method::kT1:
        return SelectT1(type, q, st, ctx);
      case Method::kT2:
        return SelectT2(type, q, st, ctx);
    }
    return Status::InvalidArgument("unknown method");
  }();

  obs::PhaseCost totals = obs::FinishQueryTrace(&tracer, profile);
  st->index_page_fetches = totals.index_fetches;  // Logical (decision 11).
  st->tuple_page_fetches = totals.tuple_reads;    // Physical (decision 11).
  if (result.ok()) {
    st->results = result.value().size();
    st->filter.candidates = st->candidates;
    st->filter.results = st->results;
  } else {
    // Early exit (deadline/cancellation/I-O error): candidates the filter
    // produced but never classified are booked as abandoned so the
    // partition invariant still balances on partial queries.
    st->filter.candidates = st->candidates;
    st->filter.abandoned =
        st->candidates -
        (st->filter.dedup_dropped + st->filter.early_accepts +
         st->filter.refine_accepts + st->filter.refine_rejects);
    st->results = st->filter.early_accepts + st->filter.refine_accepts;
    st->filter.results = st->results;
  }
  if (profile != nullptr) profile->filter = st->filter;
  return result;
}

}  // namespace cdb
