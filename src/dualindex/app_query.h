// Approximation-query planning for technique T1 (Section 4.1).
//
// A half-plane query whose slope is not in S is replaced by (at most) two
// app-queries whose slopes are in S and whose union covers the original
// half-plane. Table 1 of the paper gives the operator choice; the query
// types follow Section 4.1: EXIST -> two EXISTs, ALL -> one ALL (on the
// nearer slope) plus one EXIST.

#ifndef CDB_DUALINDEX_APP_QUERY_H_
#define CDB_DUALINDEX_APP_QUERY_H_

#include <vector>

#include "constraint/naive_eval.h"
#include "dualindex/slope_set.h"
#include "geometry/linear_constraint.h"

namespace cdb {

/// One app-query: a half-plane selection whose slope is S[slope_index].
struct AppQuery {
  size_t slope_index;
  SelectionType type;
  Cmp cmp;
  double intercept;
};

/// T1 plan for an original query.
struct AppQueryPlan {
  /// True when the original slope is in S and `exact` should be executed
  /// directly (no approximation, no refinement).
  bool exact = false;
  AppQuery exact_query;

  /// Otherwise: 1-2 app-queries whose union covers the original query.
  std::vector<AppQuery> queries;
};

/// Builds the T1 plan. `anchor_x` is the x coordinate of the shared point P
/// on the query line that both app-query lines pass through (the paper
/// leaves the optimal choice open; 0 — the centre of the paper's working
/// window — is the default).
AppQueryPlan PlanAppQueries(const SlopeSet& slopes, SelectionType type,
                            const HalfPlaneQuery& q, double anchor_x = 0.0);

/// True when half-plane `q` is covered by the union of `q1` and `q2`
/// (sampled check used by tests and the Table 1 verification bench).
bool CoversSampled(const HalfPlaneQuery& q, const HalfPlaneQuery& q1,
                   const HalfPlaneQuery& q2, double extent, int steps);

}  // namespace cdb

#endif  // CDB_DUALINDEX_APP_QUERY_H_
