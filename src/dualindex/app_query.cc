#include "dualindex/app_query.h"

#include <cmath>

namespace cdb {

namespace {

// Angular distance between two slopes, in line-angle space (period pi).
// Used to decide which app-query is "nearer" in the wrap-around cases.
double AngleDistance(double a1, double a2) {
  double d = std::fabs(std::atan(a1) - std::atan(a2));
  return std::min(d, M_PI - d);
}

}  // namespace

AppQueryPlan PlanAppQueries(const SlopeSet& slopes, SelectionType type,
                            const HalfPlaneQuery& q, double anchor_x) {
  AppQueryPlan plan;
  SlopeLocation loc = slopes.Locate(q.slope);
  if (loc.kind == SlopeLocation::Kind::kExact) {
    plan.exact = true;
    plan.exact_query = {loc.index, type, q.cmp, q.intercept};
    return plan;
  }

  // a1 = slope reached by clockwise rotation of the query line, a2 by
  // anti-clockwise rotation; rotations wrap through the vertical (Table 1).
  size_t i1, i2;
  Cmp theta1, theta2;
  switch (loc.kind) {
    case SlopeLocation::Kind::kBetween:
      // a1 < a < a2 — row 1: both operators keep θ.
      i1 = loc.index;
      i2 = loc.index + 1;
      theta1 = q.cmp;
      theta2 = q.cmp;
      break;
    case SlopeLocation::Kind::kAboveMax:
      // Clockwise reaches max(S) < a; anti-clockwise wraps through the
      // vertical to min(S) < a — row 2: θ1 = θ, θ2 = ¬θ.
      i1 = slopes.size() - 1;
      i2 = 0;
      theta1 = q.cmp;
      theta2 = Negate(q.cmp);
      break;
    case SlopeLocation::Kind::kBelowMin:
    default:
      // Clockwise wraps through the vertical to max(S) > a; anti-clockwise
      // reaches min(S) > a — row 3: θ1 = ¬θ, θ2 = θ.
      i1 = slopes.size() - 1;
      i2 = 0;
      theta1 = Negate(q.cmp);
      theta2 = q.cmp;
      break;
  }

  // Both app-query lines pass through the shared point P on the query line.
  double py = q.slope * anchor_x + q.intercept;
  double b1 = py - slopes.slope(i1) * anchor_x;
  double b2 = py - slopes.slope(i2) * anchor_x;

  // Query types: EXIST -> EXIST + EXIST. ALL -> ALL on the angularly nearer
  // app-query, EXIST on the other (Section 4.1 / Figure 4).
  SelectionType t1 = SelectionType::kExist, t2 = SelectionType::kExist;
  if (type == SelectionType::kAll) {
    bool first_nearer = AngleDistance(q.slope, slopes.slope(i1)) <=
                        AngleDistance(q.slope, slopes.slope(i2));
    (first_nearer ? t1 : t2) = SelectionType::kAll;
  }

  plan.queries.push_back({i1, t1, theta1, b1});
  plan.queries.push_back({i2, t2, theta2, b2});
  return plan;
}

bool CoversSampled(const HalfPlaneQuery& q, const HalfPlaneQuery& q1,
                   const HalfPlaneQuery& q2, double extent, int steps) {
  auto inside = [](const HalfPlaneQuery& h, double x, double y) {
    double rhs = h.slope * x + h.intercept;
    return h.cmp == Cmp::kGE ? y >= rhs - 1e-9 : y <= rhs + 1e-9;
  };
  for (int ix = 0; ix <= steps; ++ix) {
    double x = -extent + 2 * extent * ix / steps;
    for (int iy = 0; iy <= steps; ++iy) {
      double y = -extent + 2 * extent * iy / steps;
      if (inside(q, x, y) && !inside(q1, x, y) && !inside(q2, x, y)) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace cdb
