// External-memory interval stabbing index — the paper's footnote 6:
// "Another solution to the same problem can be provided by reducing ALL and
// EXIST selections to the 1-dimensional interval management problem."
//
// At a fixed slope a, every tuple is the interval [BOT^P(a), TOP^P(a)] of
// intercepts of lines y = a*x + b that meet it. A *stabbing* query "which
// intervals contain v" answers EXIST for the degenerate slab (the line
// y = a*x + v) in O(log n + t/B) page accesses — strictly output-sensitive,
// unlike the B+-tree slab intersection whose cost is bounded by the larger
// one-sided sweep. Combined with a one-sided B+-tree range, it also answers
// band (slab) EXIST output-sensitively.
//
// Structure: a static centered interval tree on pages. Each node stores a
// center value and the intervals containing it, twice: sorted ascending by
// low endpoint and descending by high endpoint (inline in the node page,
// with overflow chains for crowded centers); intervals entirely below /
// above the center hang off the left / right child. Centers are endpoint
// medians, so the height is O(log n). The index is rebuilt, not updated —
// the dynamic variants (priority search trees, Arge & Vitter's optimal
// external interval management, the paper's citation [3]) are out of scope.

#ifndef CDB_DUALINDEX_STABBING_INDEX_H_
#define CDB_DUALINDEX_STABBING_INDEX_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "constraint/generalized_tuple.h"
#include "storage/pager.h"

namespace cdb {

/// A closed interval owned by a tuple. Infinite endpoints are allowed
/// (unbounded tuples).
struct StabInterval {
  double lo = 0.0;
  double hi = 0.0;
  TupleId id = 0;
};

/// See file comment. Does not own the pager.
class StabbingIndex {
 public:
  /// Builds the tree from `intervals` (lo <= hi required, NaN rejected).
  static Status Build(Pager* pager, std::vector<StabInterval> intervals,
                      std::unique_ptr<StabbingIndex>* out);

  /// All interval ids with lo <= v <= hi, sorted. `page_fetches` (optional)
  /// receives the page-access count.
  Result<std::vector<TupleId>> Stab(double v,
                                    uint64_t* page_fetches = nullptr) const;

  /// All interval ids intersecting [v1, v2] (v1 <= v2), sorted.
  /// Output-sensitive: Stab(v1) plus the intervals whose low endpoint lies
  /// in (v1, v2].
  Result<std::vector<TupleId>> Intersecting(
      double v1, double v2, uint64_t* page_fetches = nullptr) const;

  uint64_t interval_count() const { return count_; }
  uint64_t live_page_count() const { return pager_->live_page_count(); }
  uint32_t height() const { return height_; }

 private:
  explicit StabbingIndex(Pager* pager) : pager_(pager) {}

  Result<PageId> BuildRec(std::vector<StabInterval> intervals,
                          uint32_t depth);
  Status StabRec(PageId node, double v, std::vector<TupleId>* out,
                 uint64_t* fetches) const;
  Status LowInRangeRec(PageId node, double v1, double v2,
                       std::vector<TupleId>* out, uint64_t* fetches) const;

  Pager* pager_;
  PageId root_ = kInvalidPageId;
  uint64_t count_ = 0;
  uint32_t height_ = 0;
};

}  // namespace cdb

#endif  // CDB_DUALINDEX_STABBING_INDEX_H_
