// d-dimensional dual index (Section 4.4 of the paper).
//
// Each point b^i in the predefined set S ⊂ E^{d-1} owns two B+-trees with
// the values TOP^P(b^i) / BOT^P(b^i) of every tuple. A query whose slope
// point is in S is answered exactly by one sweep. Otherwise technique T1
// generalizes: choose up to d points of S whose convex hull contains the
// query slope point; the app-query hyperplanes through a common anchor
// point on the query hyperplane cover the query half-space (the convex-
// combination argument in DESIGN.md), so a union of d sweeps plus
// refinement is sound. An EXIST query maps to d EXIST app-queries; an ALL
// query to one ALL app-query (nearest slope) plus d-1 EXISTs.
//
// Technique T2 generalizes per the paper's sketch ("we need the proximity
// partition of E^{d-1} induced by the Voronoi diagram from the points of
// S"): for d = 3 the slope space is a plane, each slope point's Voronoi
// cell is an intersection of bisector half-planes (clipped to the bounding
// box of S), and a tuple's assignment value for tree i is the extremum of
// its dual surface over the cell — attained at a cell vertex by
// convexity/concavity. One handicap-bounded double sweep then answers any
// query whose slope point falls inside the box; queries outside it, and
// dimensions above 3, fall back to T1 (which is what the paper's own
// evaluation, conducted entirely in E^2, also never exercised).
//
// Tuples live in a paged RelationD; the refinement step's tuple reads are
// accounted exactly like the 2-D index's.

#ifndef CDB_DUALINDEX_DDIM_INDEX_H_
#define CDB_DUALINDEX_DDIM_INDEX_H_

#include <memory>
#include <vector>

#include "btree/bplus_tree.h"
#include "constraint/generalized_tuple.h"
#include "constraint/naive_eval.h"
#include "constraint/relation_d.h"
#include "dualindex/dual_index.h"  // QueryStats
#include "geometry/lpd.h"
#include "obs/trace.h"

namespace cdb {

/// See file comment.
class DDimDualIndex {
 public:
  /// Creates an index over `relation` (dimension taken from it; the caller
  /// keeps the relation alive) for slope points `slope_points` (each of
  /// size dim-1), with B+-trees in `pager`. Existing live tuples are
  /// bulk-loaded.
  static Status Create(Pager* pager, RelationD* relation,
                       std::vector<std::vector<double>> slope_points,
                       std::unique_ptr<DDimDualIndex>* out);

  /// Adds a satisfiable tuple to the relation and all trees; returns its
  /// id.
  Result<TupleId> Insert(const GeneralizedTupleD& tuple);

  /// Query strategy for non-exact slope points.
  enum class Method {
    kExactOnly,  // Require the slope point to be in S.
    kT1,         // Covering-simplex approximation (any d).
    kT2,         // Voronoi-handicap single-tree search (d == 3, slope point
                 // inside the bounding box of S; falls back to T1 else).
  };

  /// Executes a d-dimensional ALL/EXIST half-plane selection. T1 requires
  /// the query slope point to lie in the convex hull of S (NotSupported
  /// otherwise). When `profile` is non-null it receives the per-phase span
  /// breakdown. `ctx` (optional) is checked at every page-fetch boundary,
  /// with the same early-exit contract as DualIndex::Select: no pinned
  /// pages, balanced stats, unprocessed candidates booked as
  /// `filter.abandoned`.
  Result<std::vector<TupleId>> Select(SelectionType type,
                                      const HalfPlaneQueryD& q,
                                      Method method = Method::kT1,
                                      QueryStats* stats = nullptr,
                                      obs::ExplainProfile* profile = nullptr,
                                      const QueryContext* ctx = nullptr);

  /// Back-compat convenience used by earlier revisions/tests.
  Result<std::vector<TupleId>> Select(SelectionType type,
                                      const HalfPlaneQueryD& q,
                                      bool exact_only,
                                      QueryStats* stats = nullptr) {
    return Select(type, q, exact_only ? Method::kExactOnly : Method::kT1,
                  stats);
  }

  size_t dim() const { return relation_->dim(); }
  size_t tuple_count() const { return relation_->size(); }
  uint64_t live_page_count() const { return pager_->live_page_count(); }

  /// Pagers for exec::QueryExecutor read sessions. Select is stateless per
  /// call (Voronoi cells are precomputed at Create and read-only after), so
  /// concurrent Selects are safe in concurrent-read mode.
  Pager* pager() const { return pager_; }
  RelationD* relation() const { return relation_; }

 private:
  DDimDualIndex(Pager* pager, RelationD* relation,
                std::vector<std::vector<double>> slope_points)
      : pager_(pager),
        relation_(relation),
        slope_points_(std::move(slope_points)) {}

  /// Index of the slope point equal to `p`, or npos.
  size_t FindExact(const std::vector<double>& p) const;

  /// Finds up to d slope points whose convex hull contains `p`; empty on
  /// failure.
  std::vector<size_t> FindCoveringSimplex(const std::vector<double>& p) const;

  /// Inserts surface keys for an already-stored tuple into all trees.
  Status IndexTuple(TupleId id, const GeneralizedTupleD& tuple);

  /// Precomputes the Voronoi cell vertices of every slope point (d == 3
  /// only; no-op otherwise).
  void BuildVoronoiCells();

  /// Folds one tuple's handicap contributions for every tree (d == 3).
  Status FoldHandicapsD(const GeneralizedTupleD& tuple);

  Result<std::vector<TupleId>> SelectT1(SelectionType type,
                                        const HalfPlaneQueryD& q,
                                        QueryStats* st,
                                        const QueryContext* ctx);
  Result<std::vector<TupleId>> SelectT2(SelectionType type,
                                        const HalfPlaneQueryD& q,
                                        QueryStats* st,
                                        const QueryContext* ctx);
  Status Refine(SelectionType type, const HalfPlaneQueryD& q,
                std::vector<TupleId>* ids, QueryStats* st,
                const QueryContext* ctx);

  Status RunExact(size_t slope_idx, SelectionType type, Cmp cmp,
                  double intercept, std::vector<TupleId>* out,
                  QueryStats* stats, const QueryContext* ctx);

  Pager* pager_;
  RelationD* relation_;
  std::vector<std::vector<double>> slope_points_;
  std::vector<std::unique_ptr<BPlusTree>> up_, down_;
  /// d == 3 only: Voronoi cell vertices (in the 2-D slope plane, clipped to
  /// the bounding box of S) per slope point. Empty for other dimensions.
  std::vector<std::vector<std::vector<double>>> cell_vertices_;
};

}  // namespace cdb

#endif  // CDB_DUALINDEX_DDIM_INDEX_H_
