// DualIndex — the paper's contribution: ALL/EXIST half-plane selection over
// a generalized relation via the dual representation, backed by B+-trees.
//
// For every slope a_i in the predefined set S the index maintains
//   B_i^up   keyed by TOP^P(a_i)   and   B_i^down keyed by BOT^P(a_i)
// (Section 3). A query whose slope is in S is answered exactly by one
// B+-tree sweep; otherwise either
//   T1 (Section 4.1): two app-queries with slopes in S, union + refinement
//      (duplicates possible), or
//   T2 (Section 4.2/4.3): a single B+-tree is swept twice — upward and
//      downward from the query intercept — using per-leaf handicap values
//      to bound the second sweep; duplicate-free by construction.
// Both techniques return a superset of the answer; a refinement step
// (exact LP predicates on the stored constraints) removes false hits.
//
// Unbounded tuples are stored as ±infinity keys — the index never
// approximates objects, only queries (the paper's central design point).

#ifndef CDB_DUALINDEX_DUAL_INDEX_H_
#define CDB_DUALINDEX_DUAL_INDEX_H_

#include <memory>
#include <vector>

#include "btree/bplus_tree.h"
#include "common/query_context.h"
#include "constraint/naive_eval.h"
#include "constraint/relation.h"
#include "dualindex/app_query.h"
#include "dualindex/slope_set.h"
#include "obs/health.h"
#include "obs/trace.h"

namespace cdb {

/// Query-execution strategy.
enum class QueryMethod {
  kAuto,        // Exact when the slope is in S; otherwise T2.
  kRestricted,  // Require the slope to be in S (error otherwise).
  kT1,          // Two app-queries (Section 4.1).
  kT2,          // Single-tree handicap search (Section 4.2).
};

/// Per-query execution statistics, the paper's evaluation currency.
struct QueryStats {
  uint64_t index_page_fetches = 0;  // B+-tree page accesses (logical; each
                                    // leaf is visited exactly once).
  uint64_t tuple_page_fetches = 0;  // Relation pages physically read by the
                                    // refinement step (candidates are
                                    // visited in id order, so buffered
                                    // re-reads of a page are not charged).
  uint64_t candidates = 0;          // Entries returned by sweeps.
  uint64_t duplicates = 0;          // Candidates seen more than once (T1).
  uint64_t false_hits = 0;          // Candidates removed by refinement.
  uint64_t results = 0;
  bool used_wrap_fallback = false;  // T2 delegated to T1 (slope outside S).

  /// Filter-precision phase accounting (ISSUE 6): partitions `candidates`
  /// into dedup drops / early accepts / refinement accepts / refinement
  /// rejects. filter.Balances() holds on every path by construction (the
  /// filter_precision tests prove it); also copied into the query's
  /// ExplainProfile when one is attached.
  obs::FilterCounts filter;
};

struct DualIndexOptions {
  /// Use the exact interval extrema (minimax LPs) for the ALL-family
  /// assignment values instead of the paper's TOP/BOT endpoint bounds
  /// (ablation E9 in DESIGN.md). Both are safe; tight shortens second
  /// sweeps at higher build cost.
  bool tight_assignment = false;

  /// Skip the refinement step and return the raw candidate superset.
  /// Exact queries (slope in S) are never refined — they are exact.
  bool refine = true;

  /// Anchor x for T1 app-query lines (see PlanAppQueries).
  double anchor_x = 0.0;

  /// Maintain two additional B+-trees over the tuples' x-extent support
  /// values (min/max of x), enabling *exact* vertical half-plane queries
  /// x θ c (the paper's footnote 4 extension). Costs ~2/k extra space.
  bool support_vertical = false;

  /// Maintain handicaps incrementally (DESIGN.md section 2d): the 2k trees
  /// are built augmented, Insert/Remove keep every leaf slot and internal
  /// aggregate exact, and T2 reads its second-sweep bound by one
  /// root-to-leaf descent instead of folding per-leaf handicaps. With this
  /// on, RebuildHandicaps() is a no-op compaction — values never go stale.
  /// Persisted in the trees' meta pages; Open() rederives it from there.
  bool incremental_handicaps = false;

  /// Staleness budget for ordinary (non-augmented) trees (ISSUE 5,
  /// ROADMAP item): when handicap_staleness() exceeds this after an
  /// Insert/Remove, the index runs RebuildHandicaps() automatically and
  /// increments the "dual.handicap.compactions" counter. 0 (the default)
  /// disables auto-compaction — staleness then accumulates until an
  /// explicit rebuild, exactly as before. Ignored with
  /// incremental_handicaps (staleness is always 0 there).
  uint64_t handicap_staleness_budget = 0;
};

/// Everything needed to reopen a DualIndex from its pager: the slope set,
/// the options it was built with, and the meta pages of its B+-trees.
/// Persisted by ConstraintDatabase's catalog.
struct DualIndexManifest {
  std::vector<double> slopes;
  bool tight_assignment = false;
  bool support_vertical = false;
  std::vector<PageId> up_metas;
  std::vector<PageId> down_metas;
  PageId xmax_meta = kInvalidPageId;
  PageId xmin_meta = kInvalidPageId;
};

/// See file comment. The index does not own the pager or the relation.
class DualIndex {
 public:
  /// Creates an empty index over `slopes` in `pager`, then bulk-loads every
  /// live tuple of `relation`. The relation is also the refinement source;
  /// keep it alive and in sync via Insert/Remove.
  static Status Build(Pager* pager, Relation* relation, SlopeSet slopes,
                      const DualIndexOptions& options,
                      std::unique_ptr<DualIndex>* out);

  /// Reattaches to an existing index previously described by Manifest().
  static Status Open(Pager* pager, Relation* relation,
                     const DualIndexManifest& manifest,
                     const DualIndexOptions& runtime_options,
                     std::unique_ptr<DualIndex>* out);

  /// Description sufficient to Open() this index later.
  DualIndexManifest Manifest() const;

  /// Adds a tuple to all 2k trees (and folds its handicap contributions).
  /// The tuple must be satisfiable and already stored in the relation under
  /// `id`. O(k log_B n) page accesses (Theorem 3.1/4.1).
  Status Insert(TupleId id, const GeneralizedTuple& tuple);

  /// Runs Insert's validation pass — satisfiable support values under every
  /// slope, plus bounded x extraction when vertical support is on — without
  /// touching any tree or the pager. The group-commit ingest queue calls
  /// this at admission so a malformed tuple is rejected producer-side with
  /// InvalidArgument instead of failing its whole commit group mid-apply.
  Status ValidateForInsert(const GeneralizedTuple& tuple) const;

  /// Removes a tuple from all trees. Handicaps are left conservatively
  /// stale (see DESIGN.md decision 2); call RebuildHandicaps() to restore
  /// exact values.
  Status Remove(TupleId id, const GeneralizedTuple& tuple);

  /// Executes ALL(q, r) or EXIST(q, r). Results are sorted by tuple id.
  /// `profile` (optional) receives the span-attributed phase tree of the
  /// execution ("EXPLAIN ANALYZE"); its phase sums equal the pager totals
  /// exactly (obs/trace.h).
  ///
  /// `ctx` (optional) carries a deadline and/or CancelToken, checked at
  /// every page-fetch boundary (each leaf visited, each candidate
  /// refined). A fired context returns kDeadlineExceeded/kCancelled with
  /// zero pinned pages and `stats` still balanced: the candidates the
  /// query never processed are booked as filter.abandoned.
  Result<std::vector<TupleId>> Select(SelectionType type,
                                      const HalfPlaneQuery& q,
                                      QueryMethod method,
                                      QueryStats* stats = nullptr,
                                      obs::ExplainProfile* profile = nullptr,
                                      const QueryContext* ctx = nullptr);

  /// Exact vertical selection (x θ c). Requires
  /// DualIndexOptions::support_vertical; one sweep, no refinement.
  Result<std::vector<TupleId>> SelectVertical(
      SelectionType type, const VerticalQuery& q, QueryStats* stats = nullptr,
      obs::ExplainProfile* profile = nullptr);

  /// Slab selection: the region between two parallel lines,
  ///   b_lo <= y - slope*x <= b_hi.
  /// ALL = extension inside the slab (BOT >= b_lo and TOP <= b_hi);
  /// EXIST = extension meets the slab (TOP >= b_lo and BOT <= b_hi).
  /// Exact, via set algebra over B^up/B^down sweeps — the "interval
  /// management" view of the paper's footnote 6 (each tuple is the interval
  /// [BOT, TOP] at the query slope). Requires slope in S.
  Result<std::vector<TupleId>> SelectSlab(
      SelectionType type, double slope, double b_lo, double b_hi,
      QueryStats* stats = nullptr, obs::ExplainProfile* profile = nullptr);

  /// Recomputes every handicap value exactly from the relation contents.
  /// With incremental_handicaps this is a compaction pass (the values are
  /// already exact); without it, the only way to restore exactness.
  Status RebuildHandicaps();

  /// Sum of BPlusTree::handicap_staleness() over the 2k trees: how many
  /// handicap-degrading events have accumulated since the last rebuild.
  /// Always 0 with incremental_handicaps.
  uint64_t handicap_staleness() const;

  /// Publishes handicap_staleness() as the "dual.handicap.staleness" gauge.
  /// Export-path only — Insert/Remove/Select never call it unless a
  /// triggered staleness budget just compacted (the gauge then reflects
  /// the post-rebuild value): serial bench artifacts that predate this
  /// metric stay byte-identical.
  void ExportStalenessMetrics() const;

  /// Runs BPlusTree::CheckInvariants on all 2k trees (and the vertical
  /// support trees when present); returns the first violation. Used by the
  /// cdb_check integrity checker and the crash-recovery tests.
  Status CheckInvariants() const;

  /// Fills `out` with per-tree structure, occupancy, staleness and
  /// handicap-tightness numbers plus slope-set coverage (ISSUE 6,
  /// obs/health.h). Tightness replays the exact fold over the live
  /// relation through the same contribution enumeration the write path
  /// uses, so stored-vs-exact gaps measure staleness drift, never math
  /// drift. Read-only; O(|relation| * k + leaves) page accesses.
  Status CollectHealth(obs::HealthReport* out) const;

  /// Attaches (nullptr detaches) an observed query-slope histogram:
  /// Select() then records every query's slope. Off by default — the
  /// serving path pays one null check and serial bench artifacts stay
  /// untouched. The observer must outlive its attachment.
  void set_slope_observer(obs::SlopeHistogram* observer) {
    slope_observer_ = observer;
  }

  /// Trees this index owns (2k, plus 2 with vertical support).
  size_t tree_count() const {
    return up_.size() + down_.size() + (xmax_ != nullptr ? 2 : 0);
  }

  /// Human-readable, single-line-per-step description of how Select()
  /// would execute the query (tree choice, sweep directions, app-query
  /// plan, fallbacks) — without running it.
  std::string Explain(SelectionType type, const HalfPlaneQuery& q,
                      QueryMethod method) const;

  const SlopeSet& slopes() const { return slopes_; }

  /// Pages currently used by the index (Figure 10 metric).
  uint64_t live_page_count() const { return pager_->live_page_count(); }

  /// The pagers a read session must cover to run Select on a worker thread
  /// (exec::QueryExecutor). Select/SelectVertical/SelectSlab keep no shared
  /// mutable state of their own — sweeps use stack-local leaf cursors — so
  /// they are safe to call concurrently while both pagers are in
  /// concurrent-read mode and no mutation runs.
  Pager* pager() const { return pager_; }
  Relation* relation() const { return relation_; }

 private:
  DualIndex(Pager* pager, Relation* relation, SlopeSet slopes,
            const DualIndexOptions& options)
      : pager_(pager),
        relation_(relation),
        slopes_(std::move(slopes)),
        options_(options) {}

  // One handicap write of FoldHandicaps: fold `v` into `slot` of the leaf
  // covering assignment value `at` on B_i^up (is_up) or B_i^down.
  struct HandicapContribution {
    bool is_up;
    double at;
    int slot;
    double v;
  };

  // Enumerates the four contributions of one tuple for tree i on the
  // interval toward neighbour `other` (Section 4.2 assignment values).
  // Shared by the FoldHandicaps write path and CollectHealth's read-only
  // replay, so the tightness measurement can never drift from the fold.
  Status HandicapContributions(size_t i, size_t other,
                               const GeneralizedTuple& tuple, double top_i,
                               double bot_i, HandicapContribution out[4]) const;

  // Folds the contributions of HandicapContributions into tree i's leaves.
  Status FoldHandicaps(size_t i, size_t other, const GeneralizedTuple& tuple,
                       double top_i, double bot_i);

  // Incremental-mode twin of FoldHandicaps: fills the tuple's four
  // assignment values m[0..3] for tree i (up or down), one per handicap
  // slot; slots whose neighbour interval does not exist get the augmented
  // neutral values. Same Section 4.2 math, same tight_assignment knob.
  Status TreeAssignments(size_t i, bool is_up, const GeneralizedTuple& tuple,
                         double* m) const;

  // Installs the AssignmentFn of every augmented tree (refetches the tuple
  // from the relation and delegates to TreeAssignments).
  void RegisterAssignmentFns();

  // Insert/Remove tail: triggers RebuildHandicaps() when the configured
  // staleness budget is exceeded (see
  // DualIndexOptions::handicap_staleness_budget).
  Status MaybeAutoCompact();

  // Sweeps tree `tree` starting at `intercept`: upward collects entries with
  // key >= intercept, downward key < intercept... (exact semantics in .cc).
  // All query-path helpers take the caller's QueryContext (may be null) and
  // check it once per leaf moved / candidate refined.
  Status SweepCollect(BPlusTree* tree, double from, bool upward, int slot,
                      std::vector<TupleId>* out, double* handicap_bound,
                      QueryStats* stats, const QueryContext* ctx);
  Status SweepSecond(BPlusTree* tree, double from, bool downward, double bound,
                     std::vector<TupleId>* out, QueryStats* stats,
                     const QueryContext* ctx);

  // Executes one exact (slope in S) selection; appends ids to out.
  Status RunExact(const AppQuery& aq, std::vector<TupleId>* out,
                  QueryStats* stats, const QueryContext* ctx);

  Result<std::vector<TupleId>> SelectT1(SelectionType type,
                                        const HalfPlaneQuery& q,
                                        QueryStats* stats,
                                        const QueryContext* ctx);
  Result<std::vector<TupleId>> SelectT2(SelectionType type,
                                        const HalfPlaneQuery& q,
                                        QueryStats* stats,
                                        const QueryContext* ctx);

  // Removes candidates failing the exact predicate (when options_.refine).
  Status Refine(SelectionType type, const HalfPlaneQuery& q,
                std::vector<TupleId>* ids, QueryStats* stats,
                const QueryContext* ctx);

  Pager* pager_;
  Relation* relation_;
  SlopeSet slopes_;
  DualIndexOptions options_;
  obs::SlopeHistogram* slope_observer_ = nullptr;
  std::vector<std::unique_ptr<BPlusTree>> up_;    // TOP^P(a_i) trees.
  std::vector<std::unique_ptr<BPlusTree>> down_;  // BOT^P(a_i) trees.
  std::unique_ptr<BPlusTree> xmax_;  // max x per tuple (vertical queries).
  std::unique_ptr<BPlusTree> xmin_;  // min x per tuple.
};

}  // namespace cdb

#endif  // CDB_DUALINDEX_DUAL_INDEX_H_
