#include "dualindex/slope_set.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/float_cmp.h"

namespace cdb {

namespace {

// True when the closed hull [min, max] of the angle range avoids every odd
// multiple of pi/2 (where tan is undefined). Endpoint-inclusive on purpose:
// UniformInAngle evaluates tan at both boundary angles.
bool AngleRangeValid(double angle_lo, double angle_hi) {
  if (!std::isfinite(angle_lo) || !std::isfinite(angle_hi)) return false;
  const double lo = std::min(angle_lo, angle_hi);
  const double hi = std::max(angle_lo, angle_hi);
  const double half_pi = std::asin(1.0);
  const double pi = 2.0 * half_pi;
  // Smallest n with half_pi + n*pi >= lo; the range is valid iff that
  // multiple already overshoots hi.
  const double n = std::ceil((lo - half_pi) / pi);
  return half_pi + n * pi > hi;
}

}  // namespace

SlopeSet::SlopeSet(std::vector<double> slopes) : slopes_(std::move(slopes)) {
  assert(!slopes_.empty());
  std::sort(slopes_.begin(), slopes_.end());
  slopes_.erase(std::unique(slopes_.begin(), slopes_.end()), slopes_.end());
}

SlopeSet SlopeSet::UniformInAngle(size_t k, double angle_lo, double angle_hi) {
  assert(k >= 1);
  assert(AngleRangeValid(angle_lo, angle_hi));  // Precondition: see header.
  std::vector<double> slopes;
  slopes.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    // Endpoint-inclusive spacing: the extreme slopes of S bracket the whole
    // angle range, so queries drawn from it never fall in the wrap-around
    // region (k = 1 degenerates to the range midpoint).
    double t = k == 1 ? 0.5
                      : static_cast<double>(i) / static_cast<double>(k - 1);
    double angle = angle_lo + t * (angle_hi - angle_lo);
    slopes.push_back(std::tan(angle));
  }
  return SlopeSet(std::move(slopes));
}

Result<SlopeSet> SlopeSet::UniformInAngleChecked(size_t k, double angle_lo,
                                                 double angle_hi) {
  if (k == 0) {
    return Status::InvalidArgument("slope set needs at least one slope");
  }
  if (!AngleRangeValid(angle_lo, angle_hi)) {
    return Status::InvalidArgument(
        "angle range must be finite and avoid odd multiples of pi/2 "
        "(vertical direction; tan is undefined)");
  }
  return UniformInAngle(k, angle_lo, angle_hi);
}

SlopeLocation SlopeSet::Locate(double a) const {
  // Tolerance check first (both lower_bound neighbours), so a slope that
  // drifted a few ulps — e.g. reconstructed via tan(atan(s)) — classifies
  // as kExact instead of leaking into kBetween or the wrap-around kinds.
  auto it = std::lower_bound(slopes_.begin(), slopes_.end(), a);
  size_t i = static_cast<size_t>(it - slopes_.begin());
  if (it != slopes_.end() && ApproxEq(*it, a)) {
    return {SlopeLocation::Kind::kExact, i};
  }
  if (it != slopes_.begin() && ApproxEq(*(it - 1), a)) {
    return {SlopeLocation::Kind::kExact, i - 1};
  }
  if (a < slopes_.front()) {
    return {SlopeLocation::Kind::kBelowMin, 0};
  }
  if (a > slopes_.back()) {
    return {SlopeLocation::Kind::kAboveMax, slopes_.size() - 1};
  }
  // slopes_[i-1] < a < slopes_[i]; report the left neighbour.
  return {SlopeLocation::Kind::kBetween, i - 1};
}

size_t SlopeSet::Nearest(double a) const {
  SlopeLocation loc = Locate(a);
  switch (loc.kind) {
    case SlopeLocation::Kind::kExact:
    case SlopeLocation::Kind::kBelowMin:
      return loc.index;
    case SlopeLocation::Kind::kAboveMax:
      return slopes_.size() - 1;
    case SlopeLocation::Kind::kBetween:
      return a - slopes_[loc.index] <= slopes_[loc.index + 1] - a
                 ? loc.index
                 : loc.index + 1;
  }
  return 0;
}

}  // namespace cdb
