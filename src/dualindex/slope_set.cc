#include "dualindex/slope_set.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace cdb {

SlopeSet::SlopeSet(std::vector<double> slopes) : slopes_(std::move(slopes)) {
  assert(!slopes_.empty());
  std::sort(slopes_.begin(), slopes_.end());
  slopes_.erase(std::unique(slopes_.begin(), slopes_.end()), slopes_.end());
}

SlopeSet SlopeSet::UniformInAngle(size_t k, double angle_lo, double angle_hi) {
  assert(k >= 1);
  std::vector<double> slopes;
  slopes.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    // Endpoint-inclusive spacing: the extreme slopes of S bracket the whole
    // angle range, so queries drawn from it never fall in the wrap-around
    // region (k = 1 degenerates to the range midpoint).
    double t = k == 1 ? 0.5
                      : static_cast<double>(i) / static_cast<double>(k - 1);
    double angle = angle_lo + t * (angle_hi - angle_lo);
    slopes.push_back(std::tan(angle));
  }
  return SlopeSet(std::move(slopes));
}

SlopeLocation SlopeSet::Locate(double a) const {
  if (a < slopes_.front()) {
    return {SlopeLocation::Kind::kBelowMin, 0};
  }
  if (a > slopes_.back()) {
    return {SlopeLocation::Kind::kAboveMax, slopes_.size() - 1};
  }
  auto it = std::lower_bound(slopes_.begin(), slopes_.end(), a);
  size_t i = static_cast<size_t>(it - slopes_.begin());
  if (it != slopes_.end() && *it == a) {
    return {SlopeLocation::Kind::kExact, i};
  }
  // slopes_[i-1] < a < slopes_[i]; report the left neighbour.
  return {SlopeLocation::Kind::kBetween, i - 1};
}

size_t SlopeSet::Nearest(double a) const {
  SlopeLocation loc = Locate(a);
  switch (loc.kind) {
    case SlopeLocation::Kind::kExact:
    case SlopeLocation::Kind::kBelowMin:
      return loc.index;
    case SlopeLocation::Kind::kAboveMax:
      return slopes_.size() - 1;
    case SlopeLocation::Kind::kBetween:
      return a - slopes_[loc.index] <= slopes_[loc.index + 1] - a
                 ? loc.index
                 : loc.index + 1;
  }
  return 0;
}

}  // namespace cdb
