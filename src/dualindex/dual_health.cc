// DualIndex::CollectHealth (ISSUE 6): structure, occupancy, staleness and
// handicap-tightness measurement for the health report (obs/health.h).
//
// Tightness is measured by replaying the exact handicap computation:
//  - ordinary trees: every live tuple's contributions (the same
//    HandicapContributions enumeration FoldHandicaps writes through) are
//    folded into an in-memory side table keyed by the leaf page
//    HandicapLeaf() resolves — exactly what RebuildHandicaps() would
//    store — and compared slot by slot against the stored values;
//  - augmented trees: each leaf's slots are refolded from its own entries'
//    assignment values (the incremental-maintenance definition), which
//    must match the stored slots exactly.
// Stored values may only be conservative; a violation counts as `unsound`.

#include <algorithm>
#include <array>
#include <cmath>
#include <map>
#include <vector>

#include "btree/node_layout.h"
#include "dualindex/dual_index.h"

namespace cdb {

namespace {

namespace nb = btree_node;

// Tallies one (leaf, slot) stored-vs-exact pair. `stored_leq` gives the
// sound direction: true when a conservative stored value sits at or below
// the exact one. Neutral-vs-neutral pairs are exact (gap 0); a finite
// stored value against a neutral exact one is sound but has no finite gap
// (gap_unbounded); the reverse direction is unsound.
void TallyGap(double stored, double exact, bool stored_leq,
              obs::TreeHealth* t) {
  const double gap = stored_leq ? exact - stored : stored - exact;
  if (std::isnan(gap)) {  // inf - inf: both slots neutral.
    ++t->gap_samples;
    ++t->gap_zero;
    return;
  }
  if (gap < 0) {
    ++t->unsound;
    return;
  }
  if (std::isinf(gap)) {
    ++t->gap_unbounded;
    return;
  }
  ++t->gap_samples;
  if (gap == 0) ++t->gap_zero;
  t->gap_sum += gap;
  t->gap_max = std::max(t->gap_max, gap);
}

// Per-tree scan state: the stored slots of every leaf plus the exact
// replay accumulator, addressable by leaf page for the ordinary fold.
struct TreeScan {
  BPlusTree* tree = nullptr;
  obs::TreeHealth health;
  std::map<PageId, size_t> leaf_index;
  std::vector<std::array<double, nb::kHandicapSlots>> stored;
  std::vector<std::array<double, nb::kHandicapSlots>> exact;
};

}  // namespace

Status DualIndex::CollectHealth(obs::HealthReport* out) const {
  *out = obs::HealthReport();
  const size_t k = slopes_.size();
  const double leaf_capacity =
      static_cast<double>(nb::LeafCapacity(pager_->page_size()));
  const bool ordinary = !options_.incremental_handicaps;

  // Scan index for slope tree (i, is_up): the write-path twin of
  // HandicapContribution::is_up.
  auto scan_of = [](size_t i, bool is_up) { return 2 * i + (is_up ? 0 : 1); };

  std::vector<TreeScan> scans(2 * k);
  for (size_t i = 0; i < k; ++i) {
    scans[scan_of(i, true)].tree = up_[i].get();
    scans[scan_of(i, true)].health.name = "up[" + std::to_string(i) + "]";
    scans[scan_of(i, false)].tree = down_[i].get();
    scans[scan_of(i, false)].health.name = "down[" + std::to_string(i) + "]";
    scans[scan_of(i, true)].health.slope = slopes_.slope(i);
    scans[scan_of(i, false)].health.slope = slopes_.slope(i);
  }

  // Pass 1: leaf chains — structure, stored slots, and (augmented) the
  // exact per-leaf refold from the leaf's own entries.
  for (size_t si = 0; si < scans.size(); ++si) {
    TreeScan& s = scans[si];
    const size_t i = si / 2;
    const bool is_up = si % 2 == 0;
    s.health.entries = s.tree->size();
    s.health.height = s.tree->height();
    s.health.augmented = s.tree->augmented();
    s.health.staleness = s.tree->handicap_staleness();
    LeafCursor cur;
    CDB_RETURN_IF_ERROR(s.tree->SeekFirstLeaf(&cur));
    while (cur.valid()) {
      std::array<double, nb::kHandicapSlots> sv, ev;
      for (int slot = 0; slot < nb::kHandicapSlots; ++slot) {
        sv[static_cast<size_t>(slot)] = cur.handicap(slot);
        ev[static_cast<size_t>(slot)] = s.health.augmented
                                            ? nb::AugNeutralHandicap(slot)
                                            : nb::NeutralHandicap(slot);
      }
      if (s.health.augmented) {
        for (int j = 0; j < cur.entry_count(); ++j) {
          GeneralizedTuple tuple;
          CDB_RETURN_IF_ERROR(relation_->Get(cur.value(j), &tuple));
          double m[nb::kHandicapSlots];
          CDB_RETURN_IF_ERROR(TreeAssignments(i, is_up, tuple, m));
          nb::AugFoldArray(ev.data(), m);
        }
      }
      s.leaf_index[cur.page()] = s.stored.size();
      s.stored.push_back(sv);
      s.exact.push_back(ev);
      ++s.health.leaves;
      CDB_RETURN_IF_ERROR(cur.NextLeaf());
    }
    s.health.occupancy =
        s.health.leaves == 0
            ? 0
            : static_cast<double>(s.health.entries) /
                  (static_cast<double>(s.health.leaves) * leaf_capacity);
  }

  // Pass 2: the relation — tuple count, and for ordinary trees the exact
  // fold replay through the shared contribution enumeration.
  CDB_RETURN_IF_ERROR(relation_->ForEach(
      [&](TupleId, const GeneralizedTuple& tuple) -> Status {
        ++out->tuples;
        if (!ordinary) return Status::OK();
        for (size_t i = 0; i < k; ++i) {
          const double top = tuple.Top(slopes_.slope(i));
          const double bot = tuple.Bot(slopes_.slope(i));
          if (std::isnan(top) || std::isnan(bot)) break;  // Not indexed.
          for (int step = -1; step <= 1; step += 2) {
            if (step < 0 ? i == 0 : i + 1 >= k) continue;
            const size_t other = step < 0 ? i - 1 : i + 1;
            HandicapContribution c[4];
            CDB_RETURN_IF_ERROR(
                HandicapContributions(i, other, tuple, top, bot, c));
            for (const HandicapContribution& hc : c) {
              TreeScan& s = scans[scan_of(i, hc.is_up)];
              PageId leaf;
              CDB_RETURN_IF_ERROR(s.tree->HandicapLeaf(hc.at, &leaf));
              auto it = s.leaf_index.find(leaf);
              if (it == s.leaf_index.end()) continue;
              double& slot = s.exact[it->second][static_cast<size_t>(hc.slot)];
              slot = hc.slot < 2 ? std::min(slot, hc.v) : std::max(slot, hc.v);
            }
          }
        }
        return Status::OK();
      }));

  // Pass 3: compare. Sound direction per slot: ordinary min slots (0, 1)
  // and augmented min slots (2, 3) may only sit at or below the exact
  // value; their max counterparts at or above.
  for (TreeScan& s : scans) {
    for (size_t leaf = 0; leaf < s.stored.size(); ++leaf) {
      for (int slot = 0; slot < nb::kHandicapSlots; ++slot) {
        const bool stored_leq = s.health.augmented ? slot >= 2 : slot < 2;
        TallyGap(s.stored[leaf][static_cast<size_t>(slot)],
                 s.exact[leaf][static_cast<size_t>(slot)], stored_leq,
                 &s.health);
      }
    }
    out->staleness_total += s.health.staleness;
    out->unsound_total += s.health.unsound;
    out->trees.push_back(std::move(s.health));
  }

  // Vertical support trees: structure only (their handicaps are unused).
  for (BPlusTree* tree : {xmax_.get(), xmin_.get()}) {
    if (tree == nullptr) continue;
    obs::TreeHealth h;
    h.name = tree == xmax_.get() ? "xmax" : "xmin";
    h.augmented = tree->augmented();
    h.entries = tree->size();
    h.height = tree->height();
    h.staleness = tree->handicap_staleness();
    LeafCursor cur;
    CDB_RETURN_IF_ERROR(tree->SeekFirstLeaf(&cur));
    while (cur.valid()) {
      ++h.leaves;
      CDB_RETURN_IF_ERROR(cur.NextLeaf());
    }
    h.occupancy = h.leaves == 0 ? 0
                                : static_cast<double>(h.entries) /
                                      (static_cast<double>(h.leaves) *
                                       leaf_capacity);
    out->staleness_total += h.staleness;
    out->trees.push_back(std::move(h));
  }

  // Slope-set angular coverage (atan is monotone, so the angles inherit
  // the slope order) vs the observed query-slope histogram.
  for (size_t i = 0; i < k; ++i) {
    out->coverage.slope_angles.push_back(std::atan(slopes_.slope(i)));
  }
  for (size_t i = 1; i < out->coverage.slope_angles.size(); ++i) {
    out->coverage.max_adjacent_gap =
        std::max(out->coverage.max_adjacent_gap,
                 out->coverage.slope_angles[i] -
                     out->coverage.slope_angles[i - 1]);
  }
  if (slope_observer_ != nullptr && k > 0) {
    const double lo = out->coverage.slope_angles.front();
    const double hi = out->coverage.slope_angles.back();
    const int buckets = slope_observer_->buckets();
    for (int i = 0; i <= buckets; ++i) {
      out->coverage.observed_bounds.push_back(
          i < buckets ? slope_observer_->bucket_lo(i)
                      : slope_observer_->bucket_hi(buckets - 1));
    }
    for (int i = 0; i < buckets; ++i) {
      const uint64_t c = slope_observer_->count(i);
      out->coverage.observed_counts.push_back(c);
      out->coverage.observed_total += c;
      // Outside-S accounting at bucket-midpoint resolution: these queries
      // sit in the wrap-around region where T2 must fall back to T1.
      const double mid =
          (slope_observer_->bucket_lo(i) + slope_observer_->bucket_hi(i)) / 2;
      if (mid < lo || mid > hi) out->coverage.observed_outside += c;
    }
  }
  return Status::OK();
}

}  // namespace cdb
