// Minimal JSON support for the observability layer: a streaming writer for
// metrics snapshots / bench artifacts, and a strict recursive-descent parser
// used to self-check every artifact before it is written to disk (and by
// tests for round-trip validation). No exceptions; parsing failures surface
// as Status like every other fallible path.

#ifndef CDB_OBS_JSON_H_
#define CDB_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace cdb {
namespace obs {

/// Appends JSON tokens to an internal buffer. The caller is responsible for
/// well-formed nesting (Begin/End pairs, Key before values inside objects);
/// the companion parser is used as a structural self-check where it matters.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Object member key; must be followed by a value or Begin*.
  JsonWriter& Key(std::string_view key);

  JsonWriter& Value(std::string_view v);
  JsonWriter& Value(const char* v) { return Value(std::string_view(v)); }
  JsonWriter& Value(double v);  // Non-finite values are written as null.
  JsonWriter& Value(uint64_t v);
  JsonWriter& Value(int64_t v);
  JsonWriter& Value(int v) { return Value(static_cast<int64_t>(v)); }
  JsonWriter& Value(bool v);
  JsonWriter& Null();

  const std::string& str() const { return out_; }
  std::string TakeString() { return std::move(out_); }

 private:
  void Separate();

  std::string out_;
  // One entry per open container: true until the first element is written.
  std::vector<bool> first_;
  bool pending_key_ = false;
};

/// Escapes `s` for inclusion inside a JSON string literal (no quotes added).
std::string JsonEscape(std::string_view s);

/// Formats a double as the shortest decimal string that parses back to the
/// same value, via std::to_chars — byte-identical to the "C"-locale printf
/// output JsonWriter historically produced, but independent of the process
/// locale (a German LC_NUMERIC cannot turn "0.5" into "0,5"). Integral
/// values below 1e15 print as plain integers ("200", not "2e+02").
/// Non-finite values yield "inf" / "-inf" / "nan" tokens; callers that
/// need JSON (null) or Prometheus ("+Inf") spellings map them themselves.
std::string FormatDouble(double v);

/// A parsed JSON document. Object member order is preserved.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number = 0;
  std::string string_value;
  std::vector<JsonValue> items;                               // kArray.
  std::vector<std::pair<std::string, JsonValue>> members;     // kObject.

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;
};

/// Parses a complete JSON document (trailing garbage is an error).
Result<JsonValue> ParseJson(std::string_view text);

}  // namespace obs
}  // namespace cdb

#endif  // CDB_OBS_JSON_H_
