// Scoped query tracing: attributes IoStats deltas and wall time to a
// nesting phase tree (ISSUE 1 tentpole).
//
// A Tracer watches up to two pagers — the *index* pager and the *tuple*
// (relation) pager — and installs itself as the ambient tracer for the
// current thread. Code inside the traced region opens phases with
//
//   CDB_TRACE_SPAN("refine");
//
// which is a no-op (one thread-local load + branch) when no tracer is
// installed. At every span boundary the tracer reads both pagers' IoStats
// and charges the delta since the previous boundary to the currently open
// span's *exclusive* (self) cost, so by construction
//
//   sum over all nodes of self == whole-query pager delta,
//
// an invariant ExplainProfile::SumsBalance() re-proves after the fact and
// the obs integration test checks against externally measured pager totals.
// Spans re-entered under the same parent (e.g. "refine/lp" inside a loop)
// merge into one node with an invocation count.
//
// The ambient tracer pointer is thread-local, and the tracer reads pagers
// through Pager::ThreadStats(): on an executor worker thread (concurrent-
// read mode, with a PagerReadSession open) it sees only that thread's own
// I/O, so per-query ExplainProfiles still reconcile exactly when many
// queries run in parallel; on a plain single-threaded path ThreadStats()
// is stats() and nothing changes.

#ifndef CDB_OBS_TRACE_H_
#define CDB_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/io_stats.h"
#include "obs/clock.h"
#include "obs/json.h"

namespace cdb {

class Pager;

namespace obs {

/// Cost attributed to one phase: logical fetches and physical reads on the
/// index and tuple pagers (DESIGN.md decision 11 keeps the two currencies
/// separate) plus wall time.
struct PhaseCost {
  uint64_t index_fetches = 0;  // Logical page accesses, index pager.
  uint64_t index_reads = 0;    // Physical reads, index pager.
  uint64_t tuple_fetches = 0;  // Logical page accesses, tuple pager.
  uint64_t tuple_reads = 0;    // Physical reads, tuple pager.
  double wall_ms = 0;

  void Add(const PhaseCost& o);
  /// Equality of the four I/O counters (wall time is not comparable).
  bool IoEquals(const PhaseCost& o) const;
};

/// One node of the finished phase tree.
struct ProfileNode {
  std::string name;
  uint64_t invocations = 0;  // Times the span was entered.
  PhaseCost self;            // Exclusive cost.
  std::vector<ProfileNode> children;

  /// Inclusive cost: self plus every descendant.
  PhaseCost Total() const;
  /// Depth-first search by name ("refine", not a path). nullptr if absent.
  const ProfileNode* Find(std::string_view target) const;
};

/// See file comment. Construct on the stack around a query; it becomes the
/// ambient tracer until destroyed (previous tracer is restored, so traced
/// regions may nest).
class Tracer {
 public:
  /// `tuple_pager` may be null, or equal to `index_pager` (then all cost is
  /// reported on the index slots and the tuple slots stay zero). `clock`
  /// drives every wall_ms reading (ISSUE 5: null = obs::DefaultClock(), so
  /// production call sites change nothing while tests inject a
  /// ManualClock and assert span timings exactly).
  Tracer(const char* root_name, Pager* index_pager, Pager* tuple_pager,
         Clock* clock = nullptr);
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Closes the root span and returns the finished tree. Must be called
  /// with every child span closed (RAII guarantees this across error
  /// returns). `overall` (optional) receives the whole-region pager delta
  /// measured independently of the per-span attribution — the two agree
  /// exactly, which SumsBalance() verifies.
  ProfileNode Finish(PhaseCost* overall = nullptr);
  bool finished() const { return finished_; }

  /// The ambient tracer for this thread (null outside traced regions).
  static Tracer* Current();

 private:
  friend class ScopedSpan;

  void Enter(const char* name);
  void Exit();
  /// Charges pager/clock deltas since the last boundary to the open span.
  void AccumulateToOpenSpan();
  PhaseCost ReadDelta(const IoStats& index_base, const IoStats& tuple_base,
                      uint64_t time_base_ns) const;

  Pager* index_pager_;
  Pager* tuple_pager_;  // Null when unused or same as index_pager_.
  Clock* clock_;
  ProfileNode root_;
  std::vector<ProfileNode*> stack_;  // Root + open ancestors; see Enter().
  IoStats last_index_, last_tuple_;
  IoStats initial_index_, initial_tuple_;
  uint64_t last_time_ns_ = 0, initial_time_ns_ = 0;
  Tracer* previous_;
  bool finished_ = false;
};

/// Deterministic 1-in-N trace sampling (ISSUE 5): whether query `index` of
/// a batch gets a Tracer profile attached depends only on (seed, index) —
/// never on wall clock or thread schedule — so the sampled set is
/// reproducible run-to-run and thread-count-to-thread-count, and the
/// unsampled queries pay nothing. every == 0 disables, every == 1 samples
/// everything; otherwise each index is chosen with probability 1/every via
/// a splitmix64 hash (decorrelated from the index's position, so striped
/// batch layouts cannot alias the sample).
class TraceSampler {
 public:
  TraceSampler() = default;
  TraceSampler(uint64_t every, uint64_t seed) : every_(every), seed_(seed) {}

  bool enabled() const { return every_ != 0; }
  bool ShouldSample(uint64_t index) const;

 private:
  uint64_t every_ = 0;
  uint64_t seed_ = 0;
};

/// RAII span. Opens a phase on the ambient tracer (no-op without one).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) : tracer_(Tracer::Current()) {
    if (tracer_ != nullptr) tracer_->Enter(name);
  }
  ~ScopedSpan() {
    if (tracer_ != nullptr) tracer_->Exit();
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Tracer* tracer_;
};

#define CDB_TRACE_CONCAT_INNER(a, b) a##b
#define CDB_TRACE_CONCAT(a, b) CDB_TRACE_CONCAT_INNER(a, b)
/// Opens a phase span for the rest of the enclosing scope.
#define CDB_TRACE_SPAN(name) \
  ::cdb::obs::ScopedSpan CDB_TRACE_CONCAT(cdb_trace_span_, __LINE__)(name)

/// Per-query filter-precision accounting (ISSUE 6): how many candidate
/// entries the filter step produced and what happened to each of them.
/// Every candidate meets exactly one of four fates — dropped by
/// deduplication / set algebra before refinement, accepted without an LP
/// test (exact paths, or refinement disabled), accepted by the LP
/// predicate, or rejected by it — so the counts partition `candidates`,
/// which Balances() re-proves per query.
struct FilterCounts {
  uint64_t candidates = 0;      // Entries produced by index sweeps/searches.
  uint64_t dedup_dropped = 0;   // Removed before refinement (T1 duplicates,
                                // slab set-intersection drops).
  uint64_t early_accepts = 0;   // Accepted without an LP refinement test.
  uint64_t refine_accepts = 0;  // Accepted by the exact LP predicate.
  uint64_t refine_rejects = 0;  // Rejected by it (the false hits).
  uint64_t abandoned = 0;       // Left unprocessed by an early exit
                                // (deadline/cancellation, ISSUE 7); always
                                // zero for queries that ran to completion.

  uint64_t results = 0;

  /// The partition invariant: the four phase counts sum to `candidates`,
  /// accepted candidates are exactly the results, and the filter step can
  /// only over-approximate (candidates >= results).
  bool Balances() const {
    return candidates ==
               dedup_dropped + early_accepts + refine_accepts +
                   refine_rejects + abandoned &&
           results == early_accepts + refine_accepts &&
           candidates >= results;
  }

  /// Filter precision results/candidates in (0, 1]; an empty candidate set
  /// is vacuously precise.
  double precision() const {
    return candidates == 0
               ? 1.0
               : static_cast<double>(results) / static_cast<double>(candidates);
  }
};

/// "EXPLAIN ANALYZE"-style result of one query execution: the phase tree
/// plus the whole-query totals it provably sums to.
struct ExplainProfile {
  ProfileNode root;
  PhaseCost totals;     // Whole-query pager delta (== root.Total()).
  FilterCounts filter;  // Filled by the query path after FinishQueryTrace.

  /// Re-proves the attribution invariant: root.Total() must reproduce
  /// `totals` exactly on all four I/O counters.
  bool SumsBalance() const { return root.Total().IoEquals(totals); }

  /// Annotated multi-line dump (indented tree, one line per phase).
  std::string ToString() const;
  void WriteJson(JsonWriter* w) const;
  std::string ToJson() const;
};

/// Finishes `tracer`, fills `profile` when requested, and returns the
/// whole-region totals — the one-liner every query path ends with.
PhaseCost FinishQueryTrace(Tracer* tracer, ExplainProfile* profile);

}  // namespace obs
}  // namespace cdb

#endif  // CDB_OBS_TRACE_H_
