// Ingest pipeline stage attribution (ISSUE 10 tentpole).
//
// The write path's analogue of the query path's Tracer/ExplainProfile: a
// bundle of stage-labelled LatencyRecorders that decompose each append's
// Submit -> reader-visibility latency into five stages, measured on the
// injectable obs::Clock by the IngestQueue writer:
//
//   admission   Submit() to the writer opening the append's group
//               (time spent queued before any writer attention);
//   group_wait  group open to group drain (the commit-wait window /
//               batching delay; zero for the append that filled the group);
//   apply       Relation::Insert + DualIndex::Insert for the whole group;
//   fsync       the group's single journal commit;
//   publish     PublishAppends epoch barrier + index-pager commit, after
//               which a read session can observe the tuple.
//
// The stage anchors telescope: with s = submit time and anchor =
// max(s, group open), admission + group_wait + apply + fsync + publish ==
// visibility *exactly* in integer nanoseconds — the write-path counterpart
// of ExplainProfile::SumsBalance(), re-proven per sampled group by
// IngestGroupProfile::Balances() and enforced at runtime the way sampled
// ExplainProfiles are (DESIGN.md §2j).
//
// Sampling mirrors TraceSampler over group sequence numbers: sampled
// groups additionally keep an IngestGroupProfile (bounded ring of the most
// recent kMaxSampledProfiles) that converts to an ExplainProfile for the
// existing Chrome-trace exporter, so write-path timelines render in the
// same tooling as query traces.

#ifndef CDB_OBS_PIPELINE_H_
#define CDB_OBS_PIPELINE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/latency.h"
#include "obs/trace.h"

namespace cdb {
namespace obs {

class MetricsRegistry;

/// The five write-path stages, in pipeline order.
enum class IngestStage : int {
  kAdmission = 0,
  kGroupWait = 1,
  kApply = 2,
  kFsync = 3,
  kPublish = 4,
};
inline constexpr int kIngestStageCount = 5;

/// Stable lower_snake_case stage name used in metric prefixes, bench row
/// labels and trace span names.
std::string_view IngestStageName(IngestStage stage);

/// Why a group left the assembly window (flight-recorder payload c of
/// kGroupCommitted, and the commits_full/commits_deadline/commits_drain
/// ledger in IngestQueueStats).
enum class IngestCommitTrigger : uint64_t {
  kFull = 0,      ///< Group reached max_group_size.
  kDeadline = 1,  ///< commit_wait_ns expired on a partial group.
  kDrain = 2,     ///< Greedy batching (no wait window) or close-time drain.
};

/// Per-group stage breakdown: stage_ns[i] sums stage i across the group's
/// appends, visibility_ns sums their end-to-end latencies.
struct IngestGroupProfile {
  uint64_t group_seq = 0;
  uint64_t appends = 0;
  std::array<uint64_t, kIngestStageCount> stage_ns{};
  uint64_t visibility_ns = 0;

  /// The telescoping invariant: the five stage sums reproduce the
  /// end-to-end visibility sum exactly (integer nanoseconds; the stages
  /// partition [submit, visible] per append by construction).
  bool Balances() const;

  /// Renders the group as a phase tree ("ingest.group" root, one child
  /// per stage) for the Chrome-trace exporter. Wall time only — the
  /// pipeline moves tuples, not pages, so all I/O slots stay zero and
  /// SumsBalance() holds trivially.
  ExplainProfile ToExplainProfile() const;
};

/// See file comment. Thread-safety matches the IngestQueue contract: the
/// stage recorders are wait-free (any thread), the sampled-profile ring is
/// mutex-guarded, and RecordAppend/AddGroupProfile run on the single
/// writer thread.
class IngestPipelineRecorders {
 public:
  /// Most recent sampled profiles kept for trace export.
  static constexpr size_t kMaxSampledProfiles = 64;

  /// `sample_every`/`sample_seed` feed a TraceSampler over group sequence
  /// numbers (0 disables sampling; recorders still populate).
  explicit IngestPipelineRecorders(uint64_t sample_every = 0,
                                   uint64_t sample_seed = 0);
  IngestPipelineRecorders(const IngestPipelineRecorders&) = delete;
  IngestPipelineRecorders& operator=(const IngestPipelineRecorders&) = delete;

  LatencyRecorder& stage(IngestStage s) {
    return stages_[static_cast<size_t>(s)];
  }
  const LatencyRecorder& stage(IngestStage s) const {
    return stages_[static_cast<size_t>(s)];
  }
  /// End-to-end Submit -> reader-visibility digest.
  LatencyRecorder& visibility() { return visibility_; }
  const LatencyRecorder& visibility() const { return visibility_; }

  /// Records one append's five stage durations plus its end-to-end
  /// visibility latency into the digests.
  void RecordAppend(const std::array<uint64_t, kIngestStageCount>& stage_ns,
                    uint64_t visibility_ns);

  /// Whether group `group_seq` keeps a stored profile.
  bool ShouldSampleGroup(uint64_t group_seq) const {
    return sampler_.enabled() && sampler_.ShouldSample(group_seq);
  }

  /// Stores a sampled group's profile (ring of kMaxSampledProfiles) and
  /// re-proves the stage-sum invariant; an unbalanced profile increments
  /// unbalanced_groups() (and trips an assert in debug builds, mirroring
  /// the executor's sampled-ExplainProfile enforcement).
  void AddGroupProfile(const IngestGroupProfile& profile);

  uint64_t sampled_groups() const {
    return sampled_groups_.load(std::memory_order_relaxed);
  }
  uint64_t unbalanced_groups() const {
    return unbalanced_groups_.load(std::memory_order_relaxed);
  }

  /// Copy of the retained sampled profiles, oldest first.
  std::vector<IngestGroupProfile> SampledProfiles() const;

  /// Publishes every digest as gauges: "<prefix>.stage.<name>.latency.*"
  /// and "<prefix>.visibility.latency.*" (count/mean_ms/p50/p90/p95/p99/
  /// max_ms each, via ExportLatencyMetrics) plus
  /// "<prefix>.sampled_groups" / "<prefix>.unbalanced_groups".
  void ExportMetrics(MetricsRegistry* registry,
                     const std::string& prefix) const;

  /// Chrome-trace document of the sampled group profiles (one synthetic
  /// thread per group), via the existing exporter.
  std::string TraceJson() const;

 private:
  std::array<LatencyRecorder, kIngestStageCount> stages_;
  LatencyRecorder visibility_;
  TraceSampler sampler_;
  std::atomic<uint64_t> sampled_groups_{0};
  std::atomic<uint64_t> unbalanced_groups_{0};

  mutable std::mutex mu_;  // Guards profiles_.
  std::vector<IngestGroupProfile> profiles_;
  size_t next_profile_ = 0;  // Ring cursor once profiles_ is full.
};

}  // namespace obs
}  // namespace cdb

#endif  // CDB_OBS_PIPELINE_H_
