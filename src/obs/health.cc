#include "obs/health.h"

#include <cmath>
#include <cstdio>

namespace cdb {
namespace obs {

namespace {

constexpr double kHalfPi = 1.5707963267948966;

}  // namespace

SlopeHistogram::SlopeHistogram(int buckets)
    : counts_(buckets > 0 ? static_cast<size_t>(buckets) : 1) {}

void SlopeHistogram::Observe(double slope) {
  if (std::isnan(slope)) return;
  const double angle = std::atan(slope);  // (-pi/2, pi/2).
  const double frac = (angle + kHalfPi) / (2 * kHalfPi);
  auto i = static_cast<size_t>(frac * static_cast<double>(counts_.size()));
  if (i >= counts_.size()) i = counts_.size() - 1;
  counts_[i].fetch_add(1, std::memory_order_relaxed);
}

uint64_t SlopeHistogram::total() const {
  uint64_t sum = 0;
  for (const auto& c : counts_) sum += c.load(std::memory_order_relaxed);
  return sum;
}

double SlopeHistogram::bucket_lo(int i) const {
  return -kHalfPi +
         2 * kHalfPi * static_cast<double>(i) /
             static_cast<double>(counts_.size());
}

double SlopeHistogram::bucket_hi(int i) const { return bucket_lo(i + 1); }

void HealthReport::WriteJson(JsonWriter* w) const {
  w->BeginObject();
  w->Key("schema").Value("cdb-health/v1");
  w->Key("tuples").Value(tuples);
  w->Key("staleness_total").Value(staleness_total);
  w->Key("unsound_total").Value(unsound_total);
  w->Key("trees").BeginArray();
  for (const TreeHealth& t : trees) {
    w->BeginObject();
    w->Key("name").Value(t.name);
    w->Key("slope").Value(t.slope);
    w->Key("augmented").Value(t.augmented);
    w->Key("entries").Value(t.entries);
    w->Key("leaves").Value(t.leaves);
    w->Key("height").Value(static_cast<uint64_t>(t.height));
    w->Key("occupancy").Value(t.occupancy);
    w->Key("staleness").Value(t.staleness);
    w->Key("gap_samples").Value(t.gap_samples);
    w->Key("gap_zero").Value(t.gap_zero);
    w->Key("gap_unbounded").Value(t.gap_unbounded);
    w->Key("gap_mean").Value(t.gap_mean());
    w->Key("gap_max").Value(t.gap_max);
    w->Key("unsound").Value(t.unsound);
    w->EndObject();
  }
  w->EndArray();
  w->Key("coverage").BeginObject();
  w->Key("slope_angles").BeginArray();
  for (double a : coverage.slope_angles) w->Value(a);
  w->EndArray();
  w->Key("max_adjacent_gap").Value(coverage.max_adjacent_gap);
  w->Key("observed_total").Value(coverage.observed_total);
  w->Key("observed_outside").Value(coverage.observed_outside);
  w->Key("observed_bounds").BeginArray();
  for (double b : coverage.observed_bounds) w->Value(b);
  w->EndArray();
  w->Key("observed_counts").BeginArray();
  for (uint64_t c : coverage.observed_counts) w->Value(c);
  w->EndArray();
  w->EndObject();
  w->EndObject();
}

std::string HealthReport::ToJson() const {
  JsonWriter w;
  WriteJson(&w);
  return w.TakeString();
}

std::string HealthReport::ToText() const {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "index health: %llu tuples, %zu trees, staleness %llu, "
                "unsound %llu\n",
                static_cast<unsigned long long>(tuples), trees.size(),
                static_cast<unsigned long long>(staleness_total),
                static_cast<unsigned long long>(unsound_total));
  out += buf;
  out +=
      "tree        slope      entries leaves  occ   stale  gaps(0/ub)   "
      "mean      max  unsound\n";
  for (const TreeHealth& t : trees) {
    std::snprintf(
        buf, sizeof(buf),
        "%-10s %8s%s %8llu %6llu %5.2f %6llu %5llu(%llu/%llu) %s %s %8llu\n",
        t.name.c_str(), FormatDouble(t.slope).c_str(),
        t.augmented ? "*" : " ", static_cast<unsigned long long>(t.entries),
        static_cast<unsigned long long>(t.leaves), t.occupancy,
        static_cast<unsigned long long>(t.staleness),
        static_cast<unsigned long long>(t.gap_samples),
        static_cast<unsigned long long>(t.gap_zero),
        static_cast<unsigned long long>(t.gap_unbounded),
        FormatDouble(t.gap_mean()).c_str(), FormatDouble(t.gap_max).c_str(),
        static_cast<unsigned long long>(t.unsound));
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "slope coverage: %zu slopes, max adjacent angular gap %s rad\n",
                coverage.slope_angles.size(),
                FormatDouble(coverage.max_adjacent_gap).c_str());
  out += buf;
  if (coverage.observed_total > 0) {
    std::snprintf(buf, sizeof(buf),
                  "observed queries: %llu total, %llu outside S's angle span\n",
                  static_cast<unsigned long long>(coverage.observed_total),
                  static_cast<unsigned long long>(coverage.observed_outside));
    out += buf;
  } else {
    out += "observed queries: none recorded (no slope observer attached)\n";
  }
  return out;
}

}  // namespace obs
}  // namespace cdb
