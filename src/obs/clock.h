// Pluggable monotonic clock for the observability layer (ISSUE 5).
//
// Everything in obs that reads wall time — Tracer's per-span wall_ms, the
// executor's service/queue-wait timers, bench publish timings — takes a
// Clock* (null resolves to DefaultClock()), so tests substitute a
// ManualClock and make timing assertions exact instead of sleeping and
// hoping. The storage layer sits *below* obs in the dependency order
// (obs links cdb_storage) and therefore keeps its own raw steady_clock
// reads; see PagerConcurrencyStats.

#ifndef CDB_OBS_CLOCK_H_
#define CDB_OBS_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace cdb {
namespace obs {

/// Monotonic nanosecond clock. Implementations must be callable from any
/// thread.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual uint64_t NowNanos() = 0;
};

/// The real clock: std::chrono::steady_clock.
class SteadyClock final : public Clock {
 public:
  uint64_t NowNanos() override {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }
};

/// Process-wide SteadyClock — what a null Clock* resolves to.
inline Clock* DefaultClock() {
  static SteadyClock clock;
  return &clock;
}

/// Test clock: time moves only when the test says so. Atomic, so executor
/// workers may advance it from inside jobs.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(uint64_t start_ns = 0) : now_ns_(start_ns) {}

  uint64_t NowNanos() override {
    return now_ns_.load(std::memory_order_relaxed);
  }
  void AdvanceNanos(uint64_t ns) {
    now_ns_.fetch_add(ns, std::memory_order_relaxed);
  }
  void SetNanos(uint64_t ns) {
    now_ns_.store(ns, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> now_ns_;
};

}  // namespace obs
}  // namespace cdb

#endif  // CDB_OBS_CLOCK_H_
