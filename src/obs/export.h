// Exporters for the obs substrate (ISSUE 6): Chrome-trace JSON for Tracer
// phase trees and a Prometheus-style text exposition for MetricsRegistry
// snapshots. Both are pure renderers over data the rest of the layer
// already produces — no new instrumentation, no global state.
//
// Chrome trace: ExplainProfiles carry relative wall times, not absolute
// timestamps, so the export lays each profile out on a synthetic timeline:
// a node's event spans [start, start + Total().wall_ms), its exclusive
// (self) time is placed first and its children follow back to back. The
// result loads in chrome://tracing and Perfetto (JSON "traceEvents" with
// complete "X" events, microsecond units) and every child event nests
// strictly inside its parent by construction.
//
// Prometheus: one "# TYPE" line plus value line(s) per metric, sorted by
// name (MetricsSnapshot maps are sorted), histogram buckets cumulative with
// a "+Inf" bucket, all floats via FormatDouble — deterministic and
// locale-independent, so expositions diff cleanly across runs/machines.

#ifndef CDB_OBS_EXPORT_H_
#define CDB_OBS_EXPORT_H_

#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace cdb {
namespace obs {

/// Writes one Chrome-trace document covering `profiles` (null entries are
/// skipped). Each profile gets its own synthetic thread (tid = position+1)
/// starting at ts 0, so traces of a sampled batch render side by side.
void WriteChromeTrace(const std::vector<const ExplainProfile*>& profiles,
                      JsonWriter* w);
std::string ChromeTraceJson(const std::vector<const ExplainProfile*>& profiles);

/// A label attached to every sample line of an exposition
/// (e.g. {"db", "/data/prod"}). Values are escaped per the exposition
/// format (backslash, double quote, newline).
struct PrometheusLabel {
  std::string name;
  std::string value;
};

/// Renders `snapshot` in the Prometheus text exposition format. Metric
/// names are sanitized ('.' and any other illegal character become '_');
/// counters export as `counter`, gauges as `gauge`, histograms as
/// `histogram` with cumulative `_bucket{le="..."}` series plus `_sum` and
/// `_count`.
void WritePrometheus(const MetricsSnapshot& snapshot,
                     const std::vector<PrometheusLabel>& labels,
                     std::string* out);
std::string ToPrometheus(const MetricsSnapshot& snapshot,
                         const std::vector<PrometheusLabel>& labels = {});

}  // namespace obs
}  // namespace cdb

#endif  // CDB_OBS_EXPORT_H_
