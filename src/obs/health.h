// Index-health data model and renderers (ISSUE 6): what
// DualIndex::CollectHealth measures about an index, plus JSON and text
// reports over it. The obs layer defines only the vocabulary — the
// collection logic lives with the index (dualindex/dual_health.cc), which
// replays the exact handicap fold to measure tightness.
//
// Handicap tightness (DESIGN.md section 2f): for every (leaf, slot) of an
// ordinary tree, the gap between the stored handicap and the exact value a
// fresh RebuildHandicaps() would produce. Stored values may only be
// *conservative* (splits copy, deletes leave contributions behind), so the
// gap is signed in the slot's safe direction and a negative gap — a stored
// bound tighter than the truth — is counted as `unsound` and must be 0.
// Augmented trees are maintained exactly; any gap there is a bug.

#ifndef CDB_OBS_HEALTH_H_
#define CDB_OBS_HEALTH_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.h"

namespace cdb {
namespace obs {

/// Observed query-slope histogram: fixed buckets over the slope *angle*
/// atan(slope) in (-pi/2, pi/2). Attach one to a DualIndex with
/// set_slope_observer() and every Select() records its query slope;
/// detached (the default) the serving path pays one null check. Observe()
/// is atomic — safe from concurrent batch workers.
class SlopeHistogram {
 public:
  explicit SlopeHistogram(int buckets = 32);
  SlopeHistogram(const SlopeHistogram&) = delete;
  SlopeHistogram& operator=(const SlopeHistogram&) = delete;

  void Observe(double slope);

  int buckets() const { return static_cast<int>(counts_.size()); }
  uint64_t count(int i) const {
    return counts_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
  }
  uint64_t total() const;
  /// [lo, hi) angle range of bucket i, radians.
  double bucket_lo(int i) const;
  double bucket_hi(int i) const;

 private:
  std::vector<std::atomic<uint64_t>> counts_;
};

/// Health of one B+-tree of the index (one slope surface, or a vertical
/// support tree).
struct TreeHealth {
  std::string name;  // "up[i]" / "down[i]" / "xmax" / "xmin".
  double slope = 0;  // a_i; 0 for the vertical support trees.
  bool augmented = false;
  uint64_t entries = 0;
  uint64_t leaves = 0;
  uint32_t height = 0;
  double occupancy = 0;    // entries / (leaves * leaf capacity).
  uint64_t staleness = 0;  // BPlusTree::handicap_staleness().

  // Handicap tightness over (leaf, slot) pairs; see file comment. Finite
  // stored-vs-exact pairs land in the gap distribution; a finite stored
  // value whose exact counterpart is neutral (every contribution deleted)
  // counts as `gap_unbounded` instead of skewing the mean.
  uint64_t gap_samples = 0;
  uint64_t gap_zero = 0;  // Samples with gap == 0 (still exact).
  uint64_t gap_unbounded = 0;
  double gap_sum = 0;
  double gap_max = 0;
  uint64_t unsound = 0;  // Stored bound tighter than exact; must be 0.

  double gap_mean() const {
    return gap_samples == 0 ? 0 : gap_sum / static_cast<double>(gap_samples);
  }
};

/// Slope-set angular coverage vs the observed query-slope histogram.
struct SlopeCoverageHealth {
  std::vector<double> slope_angles;  // atan(a_i), ascending, radians.
  double max_adjacent_gap = 0;       // Largest angular gap inside S.

  // Observed histogram (empty when no observer was attached).
  std::vector<double> observed_bounds;    // buckets+1 angle edges.
  std::vector<uint64_t> observed_counts;  // One count per bucket.
  uint64_t observed_total = 0;
  uint64_t observed_outside = 0;  // Queries outside [min angle, max angle]
                                  // of S — the ones T2 must wrap-fallback.
};

/// The full report; schema "cdb-health/v1" in JSON form.
struct HealthReport {
  uint64_t tuples = 0;
  uint64_t staleness_total = 0;
  uint64_t unsound_total = 0;
  std::vector<TreeHealth> trees;
  SlopeCoverageHealth coverage;

  void WriteJson(JsonWriter* w) const;
  std::string ToJson() const;
  /// Human-readable multi-line report (one line per tree plus summaries).
  std::string ToText() const;
};

}  // namespace obs
}  // namespace cdb

#endif  // CDB_OBS_HEALTH_H_
