#include "obs/latency.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"

namespace cdb {
namespace obs {

namespace {

// Inclusive upper bounds of the finite buckets: bounds[0] = kMinTrackedNs,
// then floor(kMinTrackedNs * 2^(i/kSubBuckets)). Built once; strictly
// increasing because consecutive bounds differ by ~19% of at least 1024.
struct BoundsTable {
  std::array<uint64_t, LatencyRecorder::kBuckets - 1> upper;
  BoundsTable() {
    for (size_t i = 0; i < upper.size(); ++i) {
      upper[i] = static_cast<uint64_t>(std::floor(
          static_cast<double>(LatencyRecorder::kMinTrackedNs) *
          std::exp2(static_cast<double>(i) / LatencyRecorder::kSubBuckets)));
    }
  }
};

const BoundsTable& Bounds() {
  static const BoundsTable table;
  return table;
}

}  // namespace

size_t LatencyRecorder::BucketOf(uint64_t ns) {
  const auto& upper = Bounds().upper;
  auto it = std::lower_bound(upper.begin(), upper.end(), ns);
  // Past the last finite bound -> overflow bucket (kBuckets - 1).
  return static_cast<size_t>(it - upper.begin());
}

uint64_t LatencyRecorder::BucketUpperNs(size_t i) {
  const auto& upper = Bounds().upper;
  return upper[std::min(i, upper.size() - 1)];
}

void LatencyRecorder::RecordNanos(uint64_t ns) {
  counts_[BucketOf(ns)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_ns_.fetch_add(ns, std::memory_order_relaxed);
  uint64_t cur = max_ns_.load(std::memory_order_relaxed);
  while (ns > cur &&
         !max_ns_.compare_exchange_weak(cur, ns, std::memory_order_relaxed)) {
  }
}

double LatencyRecorder::PercentileNs(double p) const {
  uint64_t n = count();
  if (n == 0) return 0;
  double clamped = std::min(1.0, std::max(0.0, p));
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(clamped * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  uint64_t exact_max = max_ns();
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    cumulative += counts_[i].load(std::memory_order_relaxed);
    if (cumulative >= rank) {
      // The overflow bucket has no finite bound; the exact max is its
      // honest upper bound (never an under-report, since every overflow
      // value is <= max). Finite buckets clamp *down* to the exact max so
      // the top of the distribution stays honest too.
      if (i == kBuckets - 1) return static_cast<double>(exact_max);
      return static_cast<double>(std::min(BucketUpperNs(i), exact_max));
    }
  }
  // Concurrent recording raced count_ past the bucket sums; the exact max
  // is the conservative answer.
  return static_cast<double>(exact_max);
}

LatencySnapshot LatencyRecorder::Snapshot() const {
  LatencySnapshot s;
  s.count = count();
  s.sum_ms = static_cast<double>(sum_ns()) / 1e6;
  s.mean_ms = s.count > 0 ? s.sum_ms / static_cast<double>(s.count) : 0;
  s.p50_ms = PercentileNs(0.50) / 1e6;
  s.p90_ms = PercentileNs(0.90) / 1e6;
  s.p95_ms = PercentileNs(0.95) / 1e6;
  s.p99_ms = PercentileNs(0.99) / 1e6;
  s.max_ms = static_cast<double>(max_ns()) / 1e6;
  return s;
}

void LatencyRecorder::Reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_ns_.store(0, std::memory_order_relaxed);
  max_ns_.store(0, std::memory_order_relaxed);
}

void ExportLatencyMetrics(const LatencyRecorder& recorder,
                          MetricsRegistry* registry,
                          const std::string& prefix) {
  LatencySnapshot s = recorder.Snapshot();
  auto set = [&](const char* name, double v) {
    registry->gauge(prefix + "." + name)->Set(v);
  };
  set("count", static_cast<double>(s.count));
  set("mean_ms", s.mean_ms);
  set("p50_ms", s.p50_ms);
  set("p90_ms", s.p90_ms);
  set("p95_ms", s.p95_ms);
  set("p99_ms", s.p99_ms);
  set("max_ms", s.max_ms);
}

}  // namespace obs
}  // namespace cdb
