// LatencyRecorder: lock-free log-scale latency histogram with percentile
// estimation (ISSUE 5 tentpole).
//
// Values (nanoseconds) land in geometrically spaced buckets: kSubBuckets
// sub-buckets per power of two, starting below kMinTrackedNs (one catch-all
// bucket) and saturating into an overflow bucket above kMaxTrackedNs. A
// percentile estimate returns its bucket's inclusive upper bound, so the
// estimate never *under*-reports and overshoots a true value v by at most
// one bucket ratio:
//
//   estimate <= max(kMinTrackedNs, (1 + kRelativeErrorBound) * v)
//
// with kRelativeErrorBound = 2^(1/kSubBuckets) - 1 (~18.9% for 4
// sub-buckets; DESIGN.md decision 37). count, sum and max are tracked
// exactly — only the shape between them is quantized. All mutation is
// relaxed atomics: executor workers record concurrently without locks, and
// Snapshot()/PercentileNs() may run concurrently with recording (they see
// some consistent-enough interleaving; the exact totals are re-read last so
// a torn view can only make a percentile conservative).
//
// The recorder does not read a clock; callers time with an obs::Clock and
// hand it the elapsed nanoseconds, which is what makes the executor's
// latency paths testable with a ManualClock.

#ifndef CDB_OBS_LATENCY_H_
#define CDB_OBS_LATENCY_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace cdb {
namespace obs {

class MetricsRegistry;

/// Point-in-time digest of a LatencyRecorder, in milliseconds (the unit the
/// bench artifacts use). Percentiles are bucket-upper-bound estimates (see
/// file comment); count/sum/mean/max are exact.
struct LatencySnapshot {
  uint64_t count = 0;
  double sum_ms = 0;
  double mean_ms = 0;
  double p50_ms = 0;
  double p90_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
  double max_ms = 0;
};

/// See file comment.
class LatencyRecorder {
 public:
  /// Sub-buckets per power of two; the knob behind kRelativeErrorBound.
  static constexpr int kSubBuckets = 4;
  /// Everything at or below this lands in bucket 0 (estimates clamp here).
  static constexpr uint64_t kMinTrackedNs = 1024;  // ~1 us.
  /// Doublings covered above kMinTrackedNs before the overflow bucket:
  /// 2^10 ns .. 2^42 ns (~73 minutes), plenty for any per-query latency.
  static constexpr int kDoublings = 32;
  static constexpr size_t kBuckets =
      1 + kSubBuckets * kDoublings + 1;  // Catch-all + spaced + overflow.
  /// 2^(1/kSubBuckets) - 1: the worst-case relative overshoot of a
  /// percentile estimate for values above kMinTrackedNs.
  static constexpr double kRelativeErrorBound = 0.18920711500272103;

  LatencyRecorder() = default;
  LatencyRecorder(const LatencyRecorder&) = delete;
  LatencyRecorder& operator=(const LatencyRecorder&) = delete;

  /// Thread-safe, wait-free.
  void RecordNanos(uint64_t ns);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum_ns() const { return sum_ns_.load(std::memory_order_relaxed); }
  uint64_t max_ns() const { return max_ns_.load(std::memory_order_relaxed); }

  /// Upper-bound estimate of the p-th percentile (p in [0, 1]) in
  /// nanoseconds; 0 when nothing was recorded. The rank is ceil(p * count)
  /// (nearest-rank definition), and the estimate is clamped to the exact
  /// max, so PercentileNs(1.0) == max_ns().
  double PercentileNs(double p) const;

  LatencySnapshot Snapshot() const;

  /// Not thread-safe (callers quiesce recording first).
  void Reset();

 private:
  static size_t BucketOf(uint64_t ns);
  /// Inclusive upper bound of bucket i, clamped to the last *finite* bound
  /// (the overflow bucket has none; PercentileNs reports exact_max there).
  static uint64_t BucketUpperNs(size_t i);

  std::array<std::atomic<uint64_t>, kBuckets> counts_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_ns_{0};
  std::atomic<uint64_t> max_ns_{0};
};

/// Publishes a recorder's digest as gauges "<prefix>.count",
/// "<prefix>.mean_ms", "<prefix>.p50_ms", "<prefix>.p90_ms",
/// "<prefix>.p95_ms", "<prefix>.p99_ms", "<prefix>.max_ms" (gauges: this is
/// a point-in-time snapshot, exactly like ExportPagerMetrics).
void ExportLatencyMetrics(const LatencyRecorder& recorder,
                          MetricsRegistry* registry,
                          const std::string& prefix);

}  // namespace obs
}  // namespace cdb

#endif  // CDB_OBS_LATENCY_H_
