#include "obs/trace.h"

#include <cassert>
#include <cstdio>

#include "storage/pager.h"

namespace cdb {
namespace obs {

namespace {

thread_local Tracer* g_current_tracer = nullptr;

}  // namespace

// --- PhaseCost / ProfileNode --------------------------------------------------

void PhaseCost::Add(const PhaseCost& o) {
  index_fetches += o.index_fetches;
  index_reads += o.index_reads;
  tuple_fetches += o.tuple_fetches;
  tuple_reads += o.tuple_reads;
  wall_ms += o.wall_ms;
}

bool PhaseCost::IoEquals(const PhaseCost& o) const {
  return index_fetches == o.index_fetches && index_reads == o.index_reads &&
         tuple_fetches == o.tuple_fetches && tuple_reads == o.tuple_reads;
}

PhaseCost ProfileNode::Total() const {
  PhaseCost t = self;
  for (const ProfileNode& child : children) t.Add(child.Total());
  return t;
}

const ProfileNode* ProfileNode::Find(std::string_view target) const {
  if (name == target) return this;
  for (const ProfileNode& child : children) {
    if (const ProfileNode* hit = child.Find(target)) return hit;
  }
  return nullptr;
}

// --- Tracer -------------------------------------------------------------------

Tracer* Tracer::Current() { return g_current_tracer; }

Tracer::Tracer(const char* root_name, Pager* index_pager, Pager* tuple_pager,
               Clock* clock)
    : index_pager_(index_pager),
      tuple_pager_(tuple_pager == index_pager ? nullptr : tuple_pager),
      clock_(clock != nullptr ? clock : DefaultClock()) {
  root_.name = root_name;
  root_.invocations = 1;
  stack_.push_back(&root_);
  if (index_pager_ != nullptr) initial_index_ = index_pager_->ThreadStats();
  if (tuple_pager_ != nullptr) initial_tuple_ = tuple_pager_->ThreadStats();
  last_index_ = initial_index_;
  last_tuple_ = initial_tuple_;
  initial_time_ns_ = clock_->NowNanos();
  last_time_ns_ = initial_time_ns_;
  previous_ = g_current_tracer;
  g_current_tracer = this;
}

Tracer::~Tracer() {
  if (g_current_tracer == this) g_current_tracer = previous_;
}

PhaseCost Tracer::ReadDelta(const IoStats& index_base,
                            const IoStats& tuple_base,
                            uint64_t time_base_ns) const {
  PhaseCost d;
  if (index_pager_ != nullptr) {
    IoStats delta = index_pager_->ThreadStats().Delta(index_base);
    d.index_fetches = delta.page_fetches;
    d.index_reads = delta.page_reads;
  }
  if (tuple_pager_ != nullptr) {
    IoStats delta = tuple_pager_->ThreadStats().Delta(tuple_base);
    d.tuple_fetches = delta.page_fetches;
    d.tuple_reads = delta.page_reads;
  }
  d.wall_ms =
      static_cast<double>(clock_->NowNanos() - time_base_ns) / 1e6;
  return d;
}

void Tracer::AccumulateToOpenSpan() {
  stack_.back()->self.Add(
      ReadDelta(last_index_, last_tuple_, last_time_ns_));
  if (index_pager_ != nullptr) last_index_ = index_pager_->ThreadStats();
  if (tuple_pager_ != nullptr) last_tuple_ = tuple_pager_->ThreadStats();
  last_time_ns_ = clock_->NowNanos();
}

void Tracer::Enter(const char* name) {
  if (finished_) return;
  AccumulateToOpenSpan();
  ProfileNode* parent = stack_.back();
  // Re-entering a phase under the same parent merges into the existing
  // node (loops produce one aggregated node, not one node per iteration).
  // Note: pushing a new child may reallocate parent->children; that is safe
  // because the stack only ever points at *open* ancestors, never at
  // already-closed siblings inside those vectors.
  ProfileNode* node = nullptr;
  for (ProfileNode& child : parent->children) {
    if (child.name == name) {
      node = &child;
      break;
    }
  }
  if (node == nullptr) {
    parent->children.emplace_back();
    node = &parent->children.back();
    node->name = name;
  }
  ++node->invocations;
  stack_.push_back(node);
}

void Tracer::Exit() {
  if (finished_ || stack_.size() <= 1) return;
  AccumulateToOpenSpan();
  stack_.pop_back();
}

ProfileNode Tracer::Finish(PhaseCost* overall) {
  assert(stack_.size() == 1 && "Finish() with child spans still open");
  // Defensive: even if a child span leaked (bug), close it so the tree and
  // the totals still balance.
  while (stack_.size() > 1) Exit();
  AccumulateToOpenSpan();
  finished_ = true;
  if (g_current_tracer == this) g_current_tracer = previous_;
  if (overall != nullptr) {
    *overall = ReadDelta(initial_index_, initial_tuple_, initial_time_ns_);
  }
  return std::move(root_);
}

// --- TraceSampler -------------------------------------------------------------

namespace {

// splitmix64 finalizer: full-avalanche mix so that e.g. every 4th index is
// not systematically (un)sampled.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

bool TraceSampler::ShouldSample(uint64_t index) const {
  if (every_ == 0) return false;
  if (every_ == 1) return true;
  return Mix64(index ^ seed_) % every_ == 0;
}

// --- ExplainProfile -----------------------------------------------------------

namespace {

void AppendNode(const ProfileNode& node, int depth, std::string* out) {
  PhaseCost total = node.Total();
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%*s%-*s x%-4llu idx %llu/%llu  tup %llu/%llu  %.3f ms\n",
                depth * 2, "", 28 - depth * 2, node.name.c_str(),
                static_cast<unsigned long long>(node.invocations),
                static_cast<unsigned long long>(total.index_fetches),
                static_cast<unsigned long long>(total.index_reads),
                static_cast<unsigned long long>(total.tuple_fetches),
                static_cast<unsigned long long>(total.tuple_reads),
                total.wall_ms);
  *out += buf;
  for (const ProfileNode& child : node.children) {
    AppendNode(child, depth + 1, out);
  }
}

void WriteNodeJson(const ProfileNode& node, JsonWriter* w) {
  w->BeginObject();
  w->Key("name").Value(node.name);
  w->Key("invocations").Value(node.invocations);
  w->Key("self").BeginObject();
  w->Key("index_fetches").Value(node.self.index_fetches);
  w->Key("index_reads").Value(node.self.index_reads);
  w->Key("tuple_fetches").Value(node.self.tuple_fetches);
  w->Key("tuple_reads").Value(node.self.tuple_reads);
  w->Key("wall_ms").Value(node.self.wall_ms);
  w->EndObject();
  w->Key("children").BeginArray();
  for (const ProfileNode& child : node.children) WriteNodeJson(child, w);
  w->EndArray();
  w->EndObject();
}

}  // namespace

std::string ExplainProfile::ToString() const {
  std::string out;
  char buf[224];
  std::snprintf(buf, sizeof(buf),
                "query profile (idx fetches/reads, tup fetches/reads):\n"
                "totals: idx %llu/%llu  tup %llu/%llu  %.3f ms  [%s]\n",
                static_cast<unsigned long long>(totals.index_fetches),
                static_cast<unsigned long long>(totals.index_reads),
                static_cast<unsigned long long>(totals.tuple_fetches),
                static_cast<unsigned long long>(totals.tuple_reads),
                totals.wall_ms, SumsBalance() ? "balanced" : "UNBALANCED");
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "filter: %llu cand = %llu dedup + %llu early + %llu accept + "
                "%llu reject + %llu abandoned -> %llu results  "
                "precision %.3f  [%s]\n",
                static_cast<unsigned long long>(filter.candidates),
                static_cast<unsigned long long>(filter.dedup_dropped),
                static_cast<unsigned long long>(filter.early_accepts),
                static_cast<unsigned long long>(filter.refine_accepts),
                static_cast<unsigned long long>(filter.refine_rejects),
                static_cast<unsigned long long>(filter.abandoned),
                static_cast<unsigned long long>(filter.results),
                filter.precision(),
                filter.Balances() ? "balanced" : "UNBALANCED");
  out += buf;
  AppendNode(root, 0, &out);
  return out;
}

void ExplainProfile::WriteJson(JsonWriter* w) const {
  w->BeginObject();
  w->Key("totals").BeginObject();
  w->Key("index_fetches").Value(totals.index_fetches);
  w->Key("index_reads").Value(totals.index_reads);
  w->Key("tuple_fetches").Value(totals.tuple_fetches);
  w->Key("tuple_reads").Value(totals.tuple_reads);
  w->Key("wall_ms").Value(totals.wall_ms);
  w->EndObject();
  w->Key("balanced").Value(SumsBalance());
  w->Key("filter").BeginObject();
  w->Key("candidates").Value(filter.candidates);
  w->Key("dedup_dropped").Value(filter.dedup_dropped);
  w->Key("early_accepts").Value(filter.early_accepts);
  w->Key("refine_accepts").Value(filter.refine_accepts);
  w->Key("refine_rejects").Value(filter.refine_rejects);
  w->Key("abandoned").Value(filter.abandoned);
  w->Key("results").Value(filter.results);
  w->Key("precision").Value(filter.precision());
  w->Key("balanced").Value(filter.Balances());
  w->EndObject();
  w->Key("root");
  WriteNodeJson(root, w);
  w->EndObject();
}

std::string ExplainProfile::ToJson() const {
  JsonWriter w;
  WriteJson(&w);
  return w.TakeString();
}

PhaseCost FinishQueryTrace(Tracer* tracer, ExplainProfile* profile) {
  PhaseCost totals;
  ProfileNode root = tracer->Finish(&totals);
  if (profile != nullptr) {
    profile->root = std::move(root);
    profile->totals = totals;
  }
  return totals;
}

}  // namespace obs
}  // namespace cdb
