#include "obs/export.h"

#include <cctype>
#include <cmath>

namespace cdb {
namespace obs {

namespace {

// One complete ("X") event per profile node on a synthetic timeline: self
// time first, then the children back to back, so the last child ends
// exactly at start + Total().wall_ms and nesting is strict.
void EmitNode(const ProfileNode& node, double start_us, int tid,
              JsonWriter* w) {
  const PhaseCost total = node.Total();
  const double total_us = total.wall_ms * 1000.0;
  w->BeginObject();
  w->Key("name").Value(node.name);
  w->Key("ph").Value("X");
  w->Key("ts").Value(start_us);
  w->Key("dur").Value(total_us);
  w->Key("pid").Value(1);
  w->Key("tid").Value(tid);
  w->Key("args").BeginObject();
  w->Key("invocations").Value(node.invocations);
  w->Key("index_fetches").Value(total.index_fetches);
  w->Key("index_reads").Value(total.index_reads);
  w->Key("tuple_fetches").Value(total.tuple_fetches);
  w->Key("tuple_reads").Value(total.tuple_reads);
  w->Key("self_wall_ms").Value(node.self.wall_ms);
  w->EndObject();
  w->EndObject();
  double t = start_us + node.self.wall_ms * 1000.0;
  for (const ProfileNode& child : node.children) {
    EmitNode(child, t, tid, w);
    t += child.Total().wall_ms * 1000.0;
  }
}

}  // namespace

void WriteChromeTrace(const std::vector<const ExplainProfile*>& profiles,
                      JsonWriter* w) {
  w->BeginObject();
  w->Key("displayTimeUnit").Value("ms");
  w->Key("traceEvents").BeginArray();
  int tid = 0;
  for (const ExplainProfile* profile : profiles) {
    ++tid;
    if (profile == nullptr) continue;
    EmitNode(profile->root, /*start_us=*/0.0, tid, w);
  }
  w->EndArray();
  w->EndObject();
}

std::string ChromeTraceJson(
    const std::vector<const ExplainProfile*>& profiles) {
  JsonWriter w;
  WriteChromeTrace(profiles, &w);
  return w.TakeString();
}

namespace {

std::string SanitizeMetricName(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha = std::isalpha(static_cast<unsigned char>(c)) != 0;
    const bool digit = std::isdigit(static_cast<unsigned char>(c)) != 0;
    if (alpha || c == '_' || c == ':' || (digit && i > 0)) {
      out += c;
    } else {
      out += '_';
    }
  }
  return out;
}

// Exposition-format label-value escaping: backslash, double quote, newline.
std::string EscapeLabelValue(std::string_view v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

// Prometheus sample values: integers stay integral, floats go through the
// locale-independent shortest form, infinities spell "+Inf"/"-Inf".
std::string PromValue(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  if (std::isnan(v)) return "NaN";
  return FormatDouble(v);
}

// "{a="x",b="y"}" or "" without labels; `extra` appends one more pair
// (the histogram `le` label).
std::string LabelBlock(const std::vector<PrometheusLabel>& labels,
                       const PrometheusLabel* extra) {
  if (labels.empty() && extra == nullptr) return "";
  std::string out = "{";
  bool first = true;
  auto append = [&](const PrometheusLabel& l) {
    if (!first) out += ',';
    first = false;
    out += SanitizeMetricName(l.name);
    out += "=\"";
    out += EscapeLabelValue(l.value);
    out += '"';
  };
  for (const PrometheusLabel& l : labels) append(l);
  if (extra != nullptr) append(*extra);
  out += '}';
  return out;
}

}  // namespace

void WritePrometheus(const MetricsSnapshot& snapshot,
                     const std::vector<PrometheusLabel>& labels,
                     std::string* out) {
  const std::string plain = LabelBlock(labels, nullptr);
  for (const auto& [name, value] : snapshot.counters) {
    const std::string n = SanitizeMetricName(name);
    *out += "# TYPE " + n + " counter\n";
    *out += n + plain + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string n = SanitizeMetricName(name);
    *out += "# TYPE " + n + " gauge\n";
    *out += n + plain + " " + PromValue(value) + "\n";
  }
  for (const auto& [name, h] : snapshot.histograms) {
    const std::string n = SanitizeMetricName(name);
    *out += "# TYPE " + n + " histogram\n";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < h.counts.size(); ++i) {
      cumulative += h.counts[i];
      PrometheusLabel le{"le", i < h.bounds.size() ? PromValue(h.bounds[i])
                                                   : "+Inf"};
      *out += n + "_bucket" + LabelBlock(labels, &le) + " " +
              std::to_string(cumulative) + "\n";
    }
    *out += n + "_sum" + plain + " " + PromValue(h.sum) + "\n";
    *out += n + "_count" + plain + " " + std::to_string(h.count) + "\n";
  }
}

std::string ToPrometheus(const MetricsSnapshot& snapshot,
                         const std::vector<PrometheusLabel>& labels) {
  std::string out;
  WritePrometheus(snapshot, labels, &out);
  return out;
}

}  // namespace obs
}  // namespace cdb
