#include "obs/pipeline.h"

#include <cassert>

#include "obs/export.h"
#include "obs/metrics.h"

namespace cdb {
namespace obs {

std::string_view IngestStageName(IngestStage stage) {
  switch (stage) {
    case IngestStage::kAdmission:
      return "admission";
    case IngestStage::kGroupWait:
      return "group_wait";
    case IngestStage::kApply:
      return "apply";
    case IngestStage::kFsync:
      return "fsync";
    case IngestStage::kPublish:
      return "publish";
  }
  return "unknown";
}

bool IngestGroupProfile::Balances() const {
  uint64_t sum = 0;
  for (uint64_t ns : stage_ns) sum += ns;
  return sum == visibility_ns;
}

ExplainProfile IngestGroupProfile::ToExplainProfile() const {
  ExplainProfile profile;
  profile.root.name = "ingest.group";
  profile.root.invocations = 1;
  for (int i = 0; i < kIngestStageCount; ++i) {
    ProfileNode child;
    child.name = std::string(IngestStageName(static_cast<IngestStage>(i)));
    child.invocations = appends;
    child.self.wall_ms = static_cast<double>(stage_ns[i]) / 1e6;
    profile.root.children.push_back(std::move(child));
  }
  profile.totals.wall_ms = static_cast<double>(visibility_ns) / 1e6;
  return profile;
}

IngestPipelineRecorders::IngestPipelineRecorders(uint64_t sample_every,
                                                uint64_t sample_seed)
    : sampler_(sample_every, sample_seed) {}

void IngestPipelineRecorders::RecordAppend(
    const std::array<uint64_t, kIngestStageCount>& stage_ns,
    uint64_t visibility_ns) {
  for (int i = 0; i < kIngestStageCount; ++i) {
    stages_[i].RecordNanos(stage_ns[i]);
  }
  visibility_.RecordNanos(visibility_ns);
}

void IngestPipelineRecorders::AddGroupProfile(
    const IngestGroupProfile& profile) {
  sampled_groups_.fetch_add(1, std::memory_order_relaxed);
  const bool balanced = profile.Balances();
  // Same posture as the executor's sampled ExplainProfiles: a sampled
  // profile that fails its balance invariant is an attribution bug, not a
  // measurement artifact — fail loudly in debug builds, count in release.
  assert(balanced && "sampled ingest group profile failed stage-sum balance");
  if (!balanced) {
    unbalanced_groups_.fetch_add(1, std::memory_order_relaxed);
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (profiles_.size() < kMaxSampledProfiles) {
    profiles_.push_back(profile);
  } else {
    profiles_[next_profile_] = profile;
    next_profile_ = (next_profile_ + 1) % kMaxSampledProfiles;
  }
}

std::vector<IngestGroupProfile> IngestPipelineRecorders::SampledProfiles()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<IngestGroupProfile> out;
  out.reserve(profiles_.size());
  // Ring order: next_profile_ is the oldest entry once the ring wrapped.
  for (size_t i = 0; i < profiles_.size(); ++i) {
    out.push_back(profiles_[(next_profile_ + i) % profiles_.size()]);
  }
  return out;
}

void IngestPipelineRecorders::ExportMetrics(MetricsRegistry* registry,
                                            const std::string& prefix) const {
  for (int i = 0; i < kIngestStageCount; ++i) {
    const std::string name(IngestStageName(static_cast<IngestStage>(i)));
    ExportLatencyMetrics(stages_[i], registry,
                         prefix + ".stage." + name + ".latency");
  }
  ExportLatencyMetrics(visibility_, registry, prefix + ".visibility.latency");
  registry->gauge(prefix + ".sampled_groups")
      ->Set(static_cast<double>(sampled_groups()));
  registry->gauge(prefix + ".unbalanced_groups")
      ->Set(static_cast<double>(unbalanced_groups()));
}

std::string IngestPipelineRecorders::TraceJson() const {
  const std::vector<IngestGroupProfile> sampled = SampledProfiles();
  std::vector<ExplainProfile> profiles;
  profiles.reserve(sampled.size());
  for (const IngestGroupProfile& g : sampled) {
    profiles.push_back(g.ToExplainProfile());
  }
  std::vector<const ExplainProfile*> ptrs;
  ptrs.reserve(profiles.size());
  for (const ExplainProfile& p : profiles) ptrs.push_back(&p);
  return ChromeTraceJson(ptrs);
}

}  // namespace obs
}  // namespace cdb
