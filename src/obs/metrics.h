// MetricsRegistry: named counters, gauges and fixed-bucket histograms for
// the observability layer.
//
// Design goals (ISSUE 1):
//  - no exceptions; the only fallible operation (histogram registration with
//    bad buckets) returns Result<>;
//  - near-zero overhead when disabled: hot-path call sites cache the handle
//    in a function-local static and Increment()/Observe() reduce to one
//    predicated load when the owning registry is disabled;
//  - stable handles: pointers returned by counter()/gauge()/histogram()
//    remain valid for the registry's lifetime (deque storage);
//  - deterministic JSON snapshots (members sorted by name) feeding the
//    BENCH_*.json artifacts.
//
// Counters and histograms are *event* metrics and respect the enabled flag;
// gauges are *snapshot* metrics written by export paths (e.g.
// ExportPagerMetrics) and always store, so a disabled registry still
// yields a truthful point-in-time export.
//
// Thread safety (ISSUE 3): Increment/Observe/Set are atomic (relaxed), so
// executor worker threads sharing cached handles never lose events;
// registration and snapshots are serialized on a registry mutex. Handles
// stay stable (deque storage), so the function-local-static caching idiom
// at hot call sites remains valid under concurrency.

#ifndef CDB_OBS_METRICS_H_
#define CDB_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "obs/json.h"

namespace cdb {

class Pager;

namespace obs {

class MetricsRegistry;

/// Monotonically increasing event count. Increment is safe from any thread.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    if (enabled_->load(std::memory_order_relaxed)) {
      value_.fetch_add(n, std::memory_order_relaxed);
    }
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

  // Deque storage moves elements only at registration time (under the
  // registry mutex), never while another thread can hold the handle.
  Counter(Counter&& o) noexcept
      : name_(std::move(o.name_)),
        enabled_(o.enabled_),
        value_(o.value_.load(std::memory_order_relaxed)) {}

 private:
  friend class MetricsRegistry;
  Counter(std::string name, const std::atomic<bool>* enabled)
      : name_(std::move(name)), enabled_(enabled) {}

  std::string name_;
  const std::atomic<bool>* enabled_;
  std::atomic<uint64_t> value_{0};
};

/// Point-in-time value (buffer-pool residency, live pages, ...). Set() is
/// not gated: gauges are written by export snapshots, not hot loops.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

  Gauge(Gauge&& o) noexcept
      : name_(std::move(o.name_)),
        value_(o.value_.load(std::memory_order_relaxed)) {}

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::string name) : name_(std::move(name)) {}

  std::string name_;
  std::atomic<double> value_{0};
};

/// Fixed-bucket histogram: `bounds` are inclusive upper bounds of the first
/// bounds.size() buckets; one implicit overflow bucket follows. Tracks sum
/// and count for mean recovery.
class Histogram {
 public:
  void Observe(double v);

  const std::vector<double>& bounds() const { return bounds_; }
  /// i in [0, bounds().size()]; the last index is the overflow bucket.
  uint64_t bucket_count(size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

  Histogram(Histogram&& o) noexcept;

 private:
  friend class MetricsRegistry;
  Histogram(std::string name, std::vector<double> bounds,
            const std::atomic<bool>* enabled);

  std::string name_;
  std::vector<double> bounds_;
  // bounds_.size() + 1 entries (atomics: vector is sized once, at
  // registration, and only the elements mutate afterwards).
  std::vector<std::atomic<uint64_t>> counts_;
  const std::atomic<bool>* enabled_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0};
};

/// Point-in-time copy of a registry's contents, decoupled from the live
/// atomics. The unit of export (obs/export.h Prometheus exposition) and of
/// interval accounting via SnapshotDelta. Maps keep everything sorted by
/// metric name, so renderings diff cleanly across runs.
struct MetricsSnapshot {
  struct HistogramData {
    std::vector<double> bounds;
    std::vector<uint64_t> counts;  // bounds.size() + 1; overflow last.
    uint64_t count = 0;
    double sum = 0;
  };

  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramData> histograms;
};

/// Interval view between two snapshots of the same registry: counters and
/// histogram tallies become `later - earlier` (clamped at zero, so a
/// ResetAll between the snapshots reads as a fresh start rather than an
/// underflow); gauges keep the later point-in-time value. Metrics absent
/// from `earlier` are taken whole.
MetricsSnapshot SnapshotDelta(const MetricsSnapshot& later,
                              const MetricsSnapshot& earlier);

/// See file comment.
class MetricsRegistry {
 public:
  explicit MetricsRegistry(bool enabled = false) : enabled_(enabled) {}
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the counter/gauge registered under `name`, creating it on
  /// first use. Handles are stable for the registry's lifetime.
  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);

  /// Registers (or retrieves) a histogram. `bounds` must be non-empty and
  /// strictly increasing, and must match any previous registration of the
  /// same name exactly.
  Result<Histogram*> histogram(std::string_view name,
                               std::vector<double> bounds);

  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Zeroes every counter, gauge, and histogram (handles stay valid).
  void ResetAll();

  /// Writes {"counters":{...},"gauges":{...},"histograms":{...}} with
  /// members sorted by metric name.
  void WriteJson(JsonWriter* w) const;
  std::string ToJson() const;

  /// Copies every metric's current value (sorted by name). The snapshot is
  /// internally consistent per metric; concurrent writers may land between
  /// two metrics' reads, like any export.
  MetricsSnapshot Snapshot() const;

 private:
  std::atomic<bool> enabled_;
  mutable std::mutex mu_;  // Guards the maps and storage below.
  std::deque<Counter> counter_storage_;
  std::deque<Gauge> gauge_storage_;
  std::deque<Histogram> histogram_storage_;
  std::map<std::string, Counter*, std::less<>> counters_;
  std::map<std::string, Gauge*, std::less<>> gauges_;
  std::map<std::string, Histogram*, std::less<>> histograms_;
};

/// The process-wide registry. Disabled by default; benchmarks and tests
/// opt in with GlobalMetrics().SetEnabled(true).
MetricsRegistry& GlobalMetrics();

/// Publishes a pager's IoStats counters and buffer-pool state as gauges
/// named "<prefix>.page_fetches", "<prefix>.buffer_hits",
/// "<prefix>.resident_frames", ... (gauges, not counters: this is a
/// point-in-time snapshot of an externally owned accumulator). Also
/// publishes the concurrency/pipeline instrumentation (ISSUE 5):
/// "<prefix>.shard.lock_waits"/".lock_wait_ns"/".imbalance",
/// "<prefix>.publish.epochs"/".drain_ns"/".sessions_drained"/".pages", and
/// "<prefix>.fsync.data_count"/".data_ns"/".journal_count"/".journal_ns".
void ExportPagerMetrics(const Pager& pager, MetricsRegistry* registry,
                        const std::string& prefix);

}  // namespace obs
}  // namespace cdb

#endif  // CDB_OBS_METRICS_H_
