#include "obs/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace cdb {
namespace obs {

// --- Writer ------------------------------------------------------------------

void JsonWriter::Separate() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // "key": was just emitted; the value follows directly.
  }
  if (!first_.empty()) {
    if (!first_.back()) out_ += ',';
    first_.back() = false;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  Separate();
  out_ += '{';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  out_ += '}';
  if (!first_.empty()) first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  Separate();
  out_ += '[';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  out_ += ']';
  if (!first_.empty()) first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  Separate();
  out_ += '"';
  out_ += JsonEscape(key);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(std::string_view v) {
  Separate();
  out_ += '"';
  out_ += JsonEscape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Value(double v) {
  if (!std::isfinite(v)) return Null();
  Separate();
  out_ += FormatDouble(v);
  return *this;
}

std::string FormatDouble(double v) {
  if (std::isnan(v)) return "nan";
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  char buf[40];
  // Integral values print as plain integers ("200", not the equally
  // round-trippable but unreadable "2e+02" that precision 1 would win with).
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    auto r = std::to_chars(buf, buf + sizeof(buf), v,
                           std::chars_format::fixed, 0);
    return std::string(buf, r.ptr);
  }
  // Shortest %g-style form that parses back exactly. to_chars/from_chars
  // match "C"-locale printf/strtod byte for byte but never consult the
  // process locale.
  for (int prec = 1; prec <= 17; ++prec) {
    auto r = std::to_chars(buf, buf + sizeof(buf), v,
                           std::chars_format::general, prec);
    double back = 0;
    auto f = std::from_chars(buf, r.ptr, back);
    if (f.ec == std::errc() && f.ptr == r.ptr && back == v) {
      return std::string(buf, r.ptr);
    }
  }
  auto r =
      std::to_chars(buf, buf + sizeof(buf), v, std::chars_format::general, 17);
  return std::string(buf, r.ptr);
}

JsonWriter& JsonWriter::Value(uint64_t v) {
  Separate();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::Value(int64_t v) {
  Separate();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::Value(bool v) {
  Separate();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  Separate();
  out_ += "null";
  return *this;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// --- Parser ------------------------------------------------------------------

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Status Parse(JsonValue* out) {
    CDB_RETURN_IF_ERROR(ParseValue(out, /*depth=*/0));
    SkipSpace();
    if (pos_ != text_.size()) {
      return Err("trailing characters after document");
    }
    return Status::OK();
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Err(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Err("nesting too deep");
    SkipSpace();
    if (pos_ >= text_.size()) return Err("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->string_value);
      case 't':
      case 'f':
        return ParseKeyword(out);
      case 'n':
        if (text_.substr(pos_, 4) == "null") {
          pos_ += 4;
          out->kind = JsonValue::Kind::kNull;
          return Status::OK();
        }
        return Err("invalid keyword");
      default:
        return ParseNumber(out);
    }
  }

  Status ParseKeyword(JsonValue* out) {
    if (text_.substr(pos_, 4) == "true") {
      pos_ += 4;
      out->kind = JsonValue::Kind::kBool;
      out->bool_value = true;
      return Status::OK();
    }
    if (text_.substr(pos_, 5) == "false") {
      pos_ += 5;
      out->kind = JsonValue::Kind::kBool;
      out->bool_value = false;
      return Status::OK();
    }
    return Err("invalid keyword");
  }

  Status ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Err("invalid value");
    std::string num(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double v = std::strtod(num.c_str(), &end);
    if (end != num.c_str() + num.size()) return Err("invalid number");
    out->kind = JsonValue::Kind::kNumber;
    out->number = v;
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Err("expected string");
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (c == '\\') {
        if (pos_ >= text_.size()) return Err("unterminated escape");
        char e = text_[pos_++];
        switch (e) {
          case '"':
            *out += '"';
            break;
          case '\\':
            *out += '\\';
            break;
          case '/':
            *out += '/';
            break;
          case 'n':
            *out += '\n';
            break;
          case 't':
            *out += '\t';
            break;
          case 'r':
            *out += '\r';
            break;
          case 'b':
            *out += '\b';
            break;
          case 'f':
            *out += '\f';
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Err("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Err("bad \\u escape");
              }
            }
            // The writer only emits \u00xx for control bytes; decode the
            // BMP code point as UTF-8.
            if (code < 0x80) {
              *out += static_cast<char>(code);
            } else if (code < 0x800) {
              *out += static_cast<char>(0xC0 | (code >> 6));
              *out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              *out += static_cast<char>(0xE0 | (code >> 12));
              *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              *out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return Err("unknown escape");
        }
      } else {
        *out += c;
      }
    }
    return Err("unterminated string");
  }

  Status ParseObject(JsonValue* out, int depth) {
    Consume('{');
    out->kind = JsonValue::Kind::kObject;
    SkipSpace();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipSpace();
      std::string key;
      CDB_RETURN_IF_ERROR(ParseString(&key));
      SkipSpace();
      if (!Consume(':')) return Err("expected ':'");
      JsonValue value;
      CDB_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->members.emplace_back(std::move(key), std::move(value));
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Err("expected ',' or '}'");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    Consume('[');
    out->kind = JsonValue::Kind::kArray;
    SkipSpace();
    if (Consume(']')) return Status::OK();
    while (true) {
      JsonValue value;
      CDB_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->items.push_back(std::move(value));
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Err("expected ',' or ']'");
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(std::string_view text) {
  JsonValue value;
  Parser parser(text);
  CDB_RETURN_IF_ERROR(parser.Parse(&value));
  return value;
}

}  // namespace obs
}  // namespace cdb
