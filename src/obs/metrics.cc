#include "obs/metrics.h"

#include <algorithm>

#include "storage/pager.h"

namespace cdb {
namespace obs {

namespace {

// Portable atomic add for doubles (atomic<double>::fetch_add is C++20 but
// not guaranteed lock-free everywhere; a relaxed CAS loop is).
void AtomicAdd(std::atomic<double>* a, double v) {
  double cur = a->load(std::memory_order_relaxed);
  while (!a->compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

}  // namespace

Histogram::Histogram(std::string name, std::vector<double> bounds,
                     const std::atomic<bool>* enabled)
    : name_(std::move(name)),
      bounds_(std::move(bounds)),
      counts_(bounds_.size() + 1),
      enabled_(enabled) {}

Histogram::Histogram(Histogram&& o) noexcept
    : name_(std::move(o.name_)),
      bounds_(std::move(o.bounds_)),
      counts_(bounds_.size() + 1),
      enabled_(o.enabled_),
      count_(o.count_.load(std::memory_order_relaxed)),
      sum_(o.sum_.load(std::memory_order_relaxed)) {
  for (size_t i = 0; i < counts_.size(); ++i) {
    counts_[i].store(o.counts_[i].load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
  }
}

void Histogram::Observe(double v) {
  if (!enabled_->load(std::memory_order_relaxed)) return;
  size_t i = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  counts_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(&sum_, v);
}

Counter* MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  counter_storage_.push_back(Counter(std::string(name), &enabled_));
  Counter* c = &counter_storage_.back();
  counters_.emplace(c->name(), c);
  return c;
}

Gauge* MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second;
  gauge_storage_.push_back(Gauge(std::string(name)));
  Gauge* g = &gauge_storage_.back();
  gauges_.emplace(g->name(), g);
  return g;
}

Result<Histogram*> MetricsRegistry::histogram(std::string_view name,
                                              std::vector<double> bounds) {
  if (bounds.empty()) {
    return Status::InvalidArgument("histogram needs at least one bound");
  }
  for (size_t i = 1; i < bounds.size(); ++i) {
    if (!(bounds[i - 1] < bounds[i])) {
      return Status::InvalidArgument(
          "histogram bounds must be strictly increasing");
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it != histograms_.end()) {
    if (it->second->bounds() != bounds) {
      return Status::InvalidArgument("histogram '" + std::string(name) +
                                     "' re-registered with different bounds");
    }
    return it->second;
  }
  histogram_storage_.push_back(
      Histogram(std::string(name), std::move(bounds), &enabled_));
  Histogram* h = &histogram_storage_.back();
  histograms_.emplace(h->name(), h);
  return h;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Counter& c : counter_storage_) {
    c.value_.store(0, std::memory_order_relaxed);
  }
  for (Gauge& g : gauge_storage_) {
    g.value_.store(0, std::memory_order_relaxed);
  }
  for (Histogram& h : histogram_storage_) {
    for (auto& c : h.counts_) c.store(0, std::memory_order_relaxed);
    h.count_.store(0, std::memory_order_relaxed);
    h.sum_.store(0, std::memory_order_relaxed);
  }
}

void MetricsRegistry::WriteJson(JsonWriter* w) const {
  std::lock_guard<std::mutex> lock(mu_);
  w->BeginObject();
  w->Key("counters").BeginObject();
  for (const auto& [name, c] : counters_) w->Key(name).Value(c->value());
  w->EndObject();
  w->Key("gauges").BeginObject();
  for (const auto& [name, g] : gauges_) w->Key(name).Value(g->value());
  w->EndObject();
  w->Key("histograms").BeginObject();
  for (const auto& [name, h] : histograms_) {
    w->Key(name).BeginObject();
    w->Key("bounds").BeginArray();
    for (double b : h->bounds()) w->Value(b);
    w->EndArray();
    w->Key("counts").BeginArray();
    for (size_t i = 0; i <= h->bounds().size(); ++i) {
      w->Value(h->bucket_count(i));
    }
    w->EndArray();
    w->Key("count").Value(h->count());
    w->Key("sum").Value(h->sum());
    w->EndObject();
  }
  w->EndObject();
  w->EndObject();
}

std::string MetricsRegistry::ToJson() const {
  JsonWriter w;
  WriteJson(&w);
  return w.TakeString();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramData data;
    data.bounds = h->bounds();
    data.counts.resize(data.bounds.size() + 1);
    for (size_t i = 0; i < data.counts.size(); ++i) {
      data.counts[i] = h->bucket_count(i);
    }
    data.count = h->count();
    data.sum = h->sum();
    snap.histograms[name] = std::move(data);
  }
  return snap;
}

MetricsSnapshot SnapshotDelta(const MetricsSnapshot& later,
                              const MetricsSnapshot& earlier) {
  auto sub = [](uint64_t a, uint64_t b) { return a > b ? a - b : 0; };
  MetricsSnapshot out;
  for (const auto& [name, v] : later.counters) {
    auto it = earlier.counters.find(name);
    out.counters[name] = it == earlier.counters.end() ? v : sub(v, it->second);
  }
  out.gauges = later.gauges;
  for (const auto& [name, h] : later.histograms) {
    MetricsSnapshot::HistogramData d = h;
    auto it = earlier.histograms.find(name);
    if (it != earlier.histograms.end() && it->second.bounds == h.bounds) {
      for (size_t i = 0; i < d.counts.size(); ++i) {
        d.counts[i] = sub(d.counts[i], it->second.counts[i]);
      }
      d.count = sub(d.count, it->second.count);
      d.sum = d.count == 0 ? 0 : d.sum - it->second.sum;
    }
    out.histograms[name] = std::move(d);
  }
  return out;
}

MetricsRegistry& GlobalMetrics() {
  static MetricsRegistry* registry = new MetricsRegistry(/*enabled=*/false);
  return *registry;
}

void ExportPagerMetrics(const Pager& pager, MetricsRegistry* registry,
                        const std::string& prefix) {
  const IoStats& s = pager.stats();
  auto set = [&](const char* name, double v) {
    registry->gauge(prefix + "." + name)->Set(v);
  };
  set("page_fetches", static_cast<double>(s.page_fetches));
  set("page_reads", static_cast<double>(s.page_reads));
  set("page_writes", static_cast<double>(s.page_writes));
  set("pages_allocated", static_cast<double>(s.pages_allocated));
  set("buffer_hits", static_cast<double>(s.buffer_hits));
  set("buffer_evictions", static_cast<double>(s.buffer_evictions));
  set("dirty_writebacks", static_cast<double>(s.dirty_writebacks));
  set("checksum_failures", static_cast<double>(s.checksum_failures));
  set("journal_records", static_cast<double>(s.journal_records));
  set("journal_commits", static_cast<double>(s.journal_commits));
  set("journal_replays", static_cast<double>(s.journal_replays));
  set("pages_rolled_back", static_cast<double>(s.pages_rolled_back));
  set("resident_frames", static_cast<double>(pager.resident_frame_count()));
  set("pinned_frames", static_cast<double>(pager.pinned_frame_count()));
  set("live_pages", static_cast<double>(pager.live_page_count()));
  // Concurrency/pipeline instrumentation (ISSUE 5). Exported
  // unconditionally: the serial paper benches never call
  // ExportPagerMetrics, so the extra gauges cannot perturb their
  // artifacts, and a concurrent caller always wants the full picture
  // (zeros included — "no contention" is a result).
  const PagerConcurrencyStats c = pager.concurrency_stats();
  set("shard.lock_waits", static_cast<double>(c.shard_lock_waits));
  set("shard.lock_wait_ns", static_cast<double>(c.shard_lock_wait_ns));
  set("shard.imbalance", pager.ShardImbalance());
  set("publish.epochs", static_cast<double>(c.publish_epochs));
  set("publish.drain_ns", static_cast<double>(c.publish_drain_ns));
  set("publish.sessions_drained",
      static_cast<double>(c.publish_sessions_drained));
  set("publish.pages", static_cast<double>(c.publish_pages));
  set("fsync.data_count", static_cast<double>(c.data_fsyncs));
  set("fsync.data_ns", static_cast<double>(c.data_fsync_ns));
  set("fsync.journal_count", static_cast<double>(c.journal_fsyncs));
  set("fsync.journal_ns", static_cast<double>(c.journal_fsync_ns));
  // Transient-retry instrumentation (ISSUE 7); unconditional for the same
  // reason. All zero unless the retry policy is enabled and a physical
  // read actually failed.
  const PagerRetryStats r = pager.retry_stats();
  set("retry.read_retries", static_cast<double>(r.read_retries));
  set("retry.read_recoveries", static_cast<double>(r.read_recoveries));
  set("retry.read_exhausted", static_cast<double>(r.read_exhausted));
  set("retry.backoff_waits", static_cast<double>(r.backoff_waits));
  set("retry.backoff_wait_ns", static_cast<double>(r.backoff_wait_ns));
  set("retry.crc_rereads", static_cast<double>(r.crc_rereads));
  set("retry.crc_reread_recoveries",
      static_cast<double>(r.crc_reread_recoveries));
}

}  // namespace obs
}  // namespace cdb
