#include "obs/event_log.h"

#include <algorithm>
#include <cstdio>

#include "common/result.h"

namespace cdb {
namespace obs {

std::string_view EventTypeName(EventType type) {
  switch (type) {
    case EventType::kSubmit:
      return "submit";
    case EventType::kShed:
      return "shed";
    case EventType::kReject:
      return "reject";
    case EventType::kGroupOpen:
      return "group_open";
    case EventType::kGroupApplied:
      return "group_applied";
    case EventType::kGroupFsync:
      return "group_fsync";
    case EventType::kGroupPublish:
      return "group_publish";
    case EventType::kGroupCommitted:
      return "group_committed";
    case EventType::kGroupFailed:
      return "group_failed";
    case EventType::kLanePoisoned:
      return "lane_poisoned";
    case EventType::kLaneClosed:
      return "lane_closed";
    case EventType::kRetry:
      return "retry";
    case EventType::kCorruption:
      return "corruption";
  }
  return "unknown";
}

EventLog::EventLog(size_t capacity, Clock* clock)
    : capacity_(capacity == 0 ? 1 : capacity),
      clock_(clock != nullptr ? clock : DefaultClock()),
      slots_(new Slot[capacity_]) {}

void EventLog::Record(EventType type, uint64_t a, uint64_t b, uint64_t c) {
  const uint64_t my_seq = cursor_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[my_seq % capacity_];
  // Claim: readers skip a busy slot; a concurrent lapping writer that also
  // claims this slot will simply win the final release store (one of the
  // two events is dropped, which the ring's overwrite semantics allow).
  slot.seq.store(kBusy, std::memory_order_relaxed);
  slot.t_ns.store(clock_->NowNanos(), std::memory_order_relaxed);
  slot.type.store(static_cast<uint32_t>(type), std::memory_order_relaxed);
  slot.a.store(a, std::memory_order_relaxed);
  slot.b.store(b, std::memory_order_relaxed);
  slot.c.store(c, std::memory_order_relaxed);
  // Commit: seq + 1 so 0 keeps meaning "never written".
  slot.seq.store(my_seq + 1, std::memory_order_release);
}

std::vector<Event> EventLog::Snapshot() const {
  std::vector<Event> out;
  out.reserve(capacity_);
  for (size_t i = 0; i < capacity_; ++i) {
    const Slot& slot = slots_[i];
    const uint64_t s1 = slot.seq.load(std::memory_order_acquire);
    if (s1 == 0 || s1 == kBusy) continue;  // Empty or mid-write.
    Event e;
    e.t_ns = slot.t_ns.load(std::memory_order_relaxed);
    e.type = static_cast<EventType>(slot.type.load(std::memory_order_relaxed));
    e.a = slot.a.load(std::memory_order_relaxed);
    e.b = slot.b.load(std::memory_order_relaxed);
    e.c = slot.c.load(std::memory_order_relaxed);
    const uint64_t s2 = slot.seq.load(std::memory_order_acquire);
    if (s2 != s1) continue;  // Overwritten while reading: drop, not tear.
    e.seq = s1 - 1;
    out.push_back(e);
  }
  std::sort(out.begin(), out.end(),
            [](const Event& x, const Event& y) { return x.seq < y.seq; });
  return out;
}

void EventLog::WriteJson(JsonWriter* w) const {
  const std::vector<Event> events = Snapshot();
  w->BeginObject();
  w->Key("schema").Value("cdb-flight/v1");
  w->Key("capacity").Value(static_cast<uint64_t>(capacity_));
  w->Key("recorded").Value(recorded());
  w->Key("dropped").Value(dropped());
  w->Key("events").BeginArray();
  for (const Event& e : events) {
    w->BeginObject();
    w->Key("seq").Value(e.seq);
    w->Key("t_ns").Value(e.t_ns);
    w->Key("type").Value(EventTypeName(e.type));
    w->Key("a").Value(e.a);
    w->Key("b").Value(e.b);
    w->Key("c").Value(e.c);
    w->EndObject();
  }
  w->EndArray();
  w->EndObject();
}

std::string EventLog::ToJson() const {
  JsonWriter w;
  WriteJson(&w);
  return w.TakeString();
}

Status EventLog::DumpToFile(const std::string& path) const {
  const std::string json = ToJson();
  Result<JsonValue> parsed = ParseJson(json);
  if (!parsed.ok()) {
    return Status::Internal("flight dump failed self-check: " +
                            parsed.status().message());
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open flight dump file: " + path);
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const int close_rc = std::fclose(f);
  if (written != json.size() || close_rc != 0) {
    return Status::IOError("short write on flight dump file: " + path);
  }
  return Status::OK();
}

}  // namespace obs
}  // namespace cdb
