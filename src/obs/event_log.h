// EventLog: fixed-capacity, always-on structured event ring — the write
// path's flight recorder (ISSUE 10 tentpole).
//
// The query path can afford sampled ExplainProfiles because a slow query
// is reproducible; a poisoned ingest lane or a Corruption is not — by the
// time anyone looks, the interesting history is gone. The EventLog keeps
// the last `capacity` pipeline events (submit/shed/group transitions/
// poison/...) in a preallocated ring so a fault dump always carries its
// own black box.
//
// Record path: one fetch_add on the ring cursor plus five relaxed atomic
// stores into the claimed slot — no locks, no allocation, wait-free, safe
// from any thread. Each slot is a per-slot seqlock: the writer marks the
// slot busy, stores the fields, then commits seq+1 with release; Snapshot()
// reads seq (acquire), the fields, and seq again, skipping slots that are
// empty, in-flight, or changed in between — a lapped or torn slot is
// dropped, never misreported. Timestamps come from the injectable
// obs::Clock (never a raw now()), so tests drive the ring with a
// ManualClock and assert dump contents exactly.
//
// JSON dumps use schema "cdb-flight/v1" and are self-checked through
// ParseJson before they reach disk, like every other artifact writer.

#ifndef CDB_OBS_EVENT_LOG_H_
#define CDB_OBS_EVENT_LOG_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "obs/clock.h"
#include "obs/json.h"

namespace cdb {
namespace obs {

/// What happened. Values are stable (they appear in dumps by *name*, but
/// tests index by enum); add new types at the end.
enum class EventType : uint32_t {
  kSubmit = 0,       ///< Append admitted; a = append id.
  kShed,             ///< Append shed at admission; a = reason (0 full,
                     ///< 1 closed, 2 poisoned).
  kReject,           ///< Append rejected as malformed (producer bug).
  kGroupOpen,        ///< Writer opened a group; a = group seq.
  kGroupApplied,     ///< Inserts done; a = group seq, b = appends.
  kGroupFsync,       ///< Journal commit done; a = group seq.
  kGroupPublish,     ///< Publish epoch done; a = group seq.
  kGroupCommitted,   ///< Group acked; a = group seq, b = appends,
                     ///< c = commit trigger (see IngestCommitTrigger).
  kGroupFailed,      ///< Group failed; a = group seq, b = status code.
  kLanePoisoned,     ///< Lane poisoned; a = group seq, b = status code.
  kLaneClosed,       ///< Close() observed by the writer.
  kRetry,            ///< A transient fault was retried; a = attempt.
  kCorruption,       ///< Integrity failure observed; a = context id.
};

/// Stable lower_snake_case name ("lane_poisoned") used in JSON dumps.
std::string_view EventTypeName(EventType type);

/// One recorded event, as read back by Snapshot().
struct Event {
  uint64_t seq = 0;   ///< Global record order (0-based, never reused).
  uint64_t t_ns = 0;  ///< Clock timestamp at record time.
  EventType type = EventType::kSubmit;
  uint64_t a = 0, b = 0, c = 0;  ///< Type-specific payload (see EventType).
};

/// See file comment.
class EventLog {
 public:
  /// `capacity` is the ring size (clamped to >= 1); `clock` drives the
  /// timestamps (null = DefaultClock(); tests inject a ManualClock).
  explicit EventLog(size_t capacity = 256, Clock* clock = nullptr);
  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Thread-safe, wait-free, allocation-free.
  void Record(EventType type, uint64_t a = 0, uint64_t b = 0, uint64_t c = 0);

  size_t capacity() const { return capacity_; }
  /// Events ever recorded (monotone; recorded() - capacity() of them have
  /// been overwritten when positive).
  uint64_t recorded() const {
    return cursor_.load(std::memory_order_relaxed);
  }
  uint64_t dropped() const {
    const uint64_t n = recorded();
    return n > capacity_ ? n - capacity_ : 0;
  }

  /// The surviving events in record (seq) order. Safe to call while
  /// writers are recording; slots being overwritten at that instant are
  /// skipped rather than returned torn.
  std::vector<Event> Snapshot() const;

  /// {"schema":"cdb-flight/v1","capacity":...,"recorded":...,
  ///  "dropped":...,"events":[{"seq","t_ns","type","a","b","c"},...]}.
  void WriteJson(JsonWriter* w) const;
  std::string ToJson() const;

  /// Writes ToJson() to `path` after a ParseJson self-check (a dump that
  /// cannot be read back is worse than none). Overwrites.
  Status DumpToFile(const std::string& path) const;

 private:
  // Per-slot seqlock: `seq` is 0 when never written, kBusy while a writer
  // owns the slot, and event_seq + 1 once committed.
  struct Slot {
    std::atomic<uint64_t> seq{0};
    std::atomic<uint64_t> t_ns{0};
    std::atomic<uint32_t> type{0};
    std::atomic<uint64_t> a{0};
    std::atomic<uint64_t> b{0};
    std::atomic<uint64_t> c{0};
  };
  static constexpr uint64_t kBusy = ~uint64_t{0};

  size_t capacity_;
  Clock* clock_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<uint64_t> cursor_{0};
};

}  // namespace obs
}  // namespace cdb

#endif  // CDB_OBS_EVENT_LOG_H_
