#include "rtree/quadtree.h"

#include <algorithm>
#include <cstring>

namespace cdb {

namespace {

// Cell page: u32 child[4] | u16 count | u16 pad | u32 overflow | entries.
// Overflow page: u32 next | u16 count | u16 pad | entries.
constexpr size_t kCellHeader = 24;
constexpr size_t kOverflowHeader = 8;
constexpr size_t kEntrySize = 36;

size_t CellCapacity(size_t page_size) {
  return (page_size - kCellHeader) / kEntrySize;
}
size_t OverflowCapacity(size_t page_size) {
  return (page_size - kOverflowHeader) / kEntrySize;
}

struct CellEntry {
  Rect rect;
  TupleId id;
};

void PutEntry(char* base, size_t i, const CellEntry& e) {
  std::memcpy(base + i * kEntrySize, &e.rect.xlo, 8);
  std::memcpy(base + i * kEntrySize + 8, &e.rect.ylo, 8);
  std::memcpy(base + i * kEntrySize + 16, &e.rect.xhi, 8);
  std::memcpy(base + i * kEntrySize + 24, &e.rect.yhi, 8);
  std::memcpy(base + i * kEntrySize + 32, &e.id, 4);
}

CellEntry GetEntry(const char* base, size_t i) {
  CellEntry e;
  std::memcpy(&e.rect.xlo, base + i * kEntrySize, 8);
  std::memcpy(&e.rect.ylo, base + i * kEntrySize + 8, 8);
  std::memcpy(&e.rect.xhi, base + i * kEntrySize + 16, 8);
  std::memcpy(&e.rect.yhi, base + i * kEntrySize + 24, 8);
  std::memcpy(&e.id, base + i * kEntrySize + 32, 4);
  return e;
}

PageId GetChild(const char* p, int q) {
  PageId id;
  std::memcpy(&id, p + 4 * q, 4);
  return id;
}
void SetChild(char* p, int q, PageId id) { std::memcpy(p + 4 * q, &id, 4); }
uint16_t GetCount(const char* p) {
  uint16_t c;
  std::memcpy(&c, p + 16, 2);
  return c;
}
void SetCount(char* p, uint16_t c) { std::memcpy(p + 16, &c, 2); }
PageId GetOverflow(const char* p) {
  PageId id;
  std::memcpy(&id, p + 20, 4);
  return id;
}
void SetOverflow(char* p, PageId id) { std::memcpy(p + 20, &id, 4); }

/// Quadrant q (0..3 = SW, SE, NW, NE) of a cell rect.
Rect Quadrant(const Rect& r, int q) {
  double mx = (r.xlo + r.xhi) / 2, my = (r.ylo + r.yhi) / 2;
  switch (q) {
    case 0: return Rect(r.xlo, r.ylo, mx, my);
    case 1: return Rect(mx, r.ylo, r.xhi, my);
    case 2: return Rect(r.xlo, my, mx, r.yhi);
    default: return Rect(mx, my, r.xhi, r.yhi);
  }
}

/// Quadrant fully containing `rect` (strictly inside one half per axis), or
/// -1 when it straddles a center line.
int ContainingQuadrant(const Rect& cell, const Rect& rect) {
  double mx = (cell.xlo + cell.xhi) / 2, my = (cell.ylo + cell.yhi) / 2;
  int qx;
  if (rect.xhi <= mx) {
    qx = 0;
  } else if (rect.xlo >= mx) {
    qx = 1;
  } else {
    return -1;
  }
  int qy;
  if (rect.yhi <= my) {
    qy = 0;
  } else if (rect.ylo >= my) {
    qy = 1;
  } else {
    return -1;
  }
  return qx + 2 * qy;
}

}  // namespace

Status MxCifQuadtree::Create(Pager* pager, const Rect& world,
                             uint32_t max_depth,
                             std::unique_ptr<MxCifQuadtree>* out) {
  if (world.IsEmpty()) return Status::InvalidArgument("empty world rect");
  std::unique_ptr<MxCifQuadtree> tree(
      new MxCifQuadtree(pager, world, max_depth));
  Result<PageId> root = pager->Allocate();
  if (!root.ok()) return root.status();
  tree->root_ = root.value();  // Freshly allocated pages are zeroed:
                               // children/overflow = kInvalidPageId, count 0.
  *out = std::move(tree);
  return Status::OK();
}

Status MxCifQuadtree::InsertRec(PageId cell, const Rect& cell_rect,
                                uint32_t depth, const Rect& rect,
                                TupleId id) {
  Result<PageRef> ref = pager_->Fetch(cell);
  if (!ref.ok()) return ref.status();
  char* p = ref.value().data();

  if (depth < max_depth_) {
    int q = ContainingQuadrant(cell_rect, rect);
    if (q >= 0) {
      PageId child = GetChild(p, q);
      if (child == kInvalidPageId) {
        Result<PageId> fresh = pager_->Allocate();
        if (!fresh.ok()) return fresh.status();
        child = fresh.value();
        SetChild(p, q, child);
        ref.value().MarkDirty();
      }
      Rect qr = Quadrant(cell_rect, q);
      ref.value().Release();
      return InsertRec(child, qr, depth + 1, rect, id);
    }
  }

  // Stays at this cell.
  const size_t cap = CellCapacity(pager_->page_size());
  uint16_t n = GetCount(p);
  if (n < cap) {
    PutEntry(p + kCellHeader, n, {rect, id});
    SetCount(p, static_cast<uint16_t>(n + 1));
    ref.value().MarkDirty();
    return Status::OK();
  }
  // Overflow chain: first page with space, else a new head.
  const size_t ocap = OverflowCapacity(pager_->page_size());
  PageId chain = GetOverflow(p);
  PageId cur = chain;
  while (cur != kInvalidPageId) {
    Result<PageRef> oref = pager_->Fetch(cur);
    if (!oref.ok()) return oref.status();
    char* op = oref.value().data();
    uint16_t oc;
    std::memcpy(&oc, op + 4, 2);
    if (oc < ocap) {
      PutEntry(op + kOverflowHeader, oc, {rect, id});
      ++oc;
      std::memcpy(op + 4, &oc, 2);
      oref.value().MarkDirty();
      return Status::OK();
    }
    std::memcpy(&cur, op, 4);
  }
  Result<PageId> fresh = pager_->Allocate();
  if (!fresh.ok()) return fresh.status();
  Result<PageRef> oref = pager_->Fetch(fresh.value());
  if (!oref.ok()) return oref.status();
  char* op = oref.value().data();
  std::memcpy(op, &chain, 4);
  uint16_t one = 1;
  std::memcpy(op + 4, &one, 2);
  PutEntry(op + kOverflowHeader, 0, {rect, id});
  oref.value().MarkDirty();
  SetOverflow(p, fresh.value());
  ref.value().MarkDirty();
  return Status::OK();
}

Status MxCifQuadtree::Insert(const Rect& rect, TupleId id) {
  if (rect.IsEmpty()) {
    return Status::InvalidArgument("quadtree entries must be bounded");
  }
  if (!world_.Contains(rect)) {
    return Status::InvalidArgument("rect outside the quadtree world");
  }
  CDB_RETURN_IF_ERROR(InsertRec(root_, world_, 0, rect, id));
  ++count_;
  return Status::OK();
}

template <typename Pred>
Status MxCifQuadtree::SearchRec(PageId cell, const Rect& cell_rect,
                                const Pred& pred, std::vector<TupleId>* out,
                                RTreeStats* stats,
                                const QueryContext* ctx) const {
  // Checkpoint before fetching the cell: recursion happens only after the
  // parent ref is released, so aborting here leaves nothing pinned.
  CDB_RETURN_IF_ERROR(CheckQueryContext(ctx));
  Result<PageRef> ref = pager_->Fetch(cell);
  if (!ref.ok()) return ref.status();
  if (stats != nullptr) ++stats->page_fetches;
  const char* p = ref.value().data();
  uint16_t n = GetCount(p);
  for (size_t i = 0; i < n; ++i) {
    CellEntry e = GetEntry(p + kCellHeader, i);
    if (stats != nullptr) ++stats->entries_scanned;
    if (pred(e.rect)) out->push_back(e.id);
  }
  PageId chain = GetOverflow(p);
  while (chain != kInvalidPageId) {
    Result<PageRef> oref = pager_->Fetch(chain);
    if (!oref.ok()) return oref.status();
    if (stats != nullptr) ++stats->page_fetches;
    const char* op = oref.value().data();
    uint16_t oc;
    std::memcpy(&oc, op + 4, 2);
    for (size_t i = 0; i < oc; ++i) {
      CellEntry e = GetEntry(op + kOverflowHeader, i);
      if (stats != nullptr) ++stats->entries_scanned;
      if (pred(e.rect)) out->push_back(e.id);
    }
    std::memcpy(&chain, op, 4);
  }
  PageId children[4];
  for (int q = 0; q < 4; ++q) children[q] = GetChild(p, q);
  ref.value().Release();
  for (int q = 0; q < 4; ++q) {
    if (children[q] == kInvalidPageId) continue;
    Rect qr = Quadrant(cell_rect, q);
    // Prune subtrees whose whole cell fails a rect-level test: the
    // predicate is monotone (region intersection), so testing the cell
    // rect is sound.
    if (!pred(qr)) continue;
    CDB_RETURN_IF_ERROR(SearchRec(children[q], qr, pred, out, stats, ctx));
  }
  return Status::OK();
}

Result<std::vector<TupleId>> MxCifQuadtree::SearchHalfPlane(
    const HalfPlaneQuery& q, RTreeStats* stats, const QueryContext* ctx) {
  std::vector<TupleId> out;
  Status st = SearchRec(
      root_, world_, [&](const Rect& r) { return r.IntersectsHalfPlane(q); },
      &out, stats, ctx);
  if (!st.ok()) return st;
  std::sort(out.begin(), out.end());
  return out;  // MX-CIF stores each object once: no duplicates.
}

Result<std::vector<TupleId>> MxCifQuadtree::SearchRect(const Rect& window,
                                                       RTreeStats* stats) {
  std::vector<TupleId> out;
  Status st = SearchRec(
      root_, world_, [&](const Rect& r) { return r.Intersects(window); },
      &out, stats, /*ctx=*/nullptr);
  if (!st.ok()) return st;
  std::sort(out.begin(), out.end());
  return out;
}

Status MxCifQuadtree::DeleteRec(PageId cell, const Rect& cell_rect,
                                const Rect& rect, TupleId id, bool* removed) {
  // The insert path is deterministic, so follow it.
  Result<PageRef> ref = pager_->Fetch(cell);
  if (!ref.ok()) return ref.status();
  char* p = ref.value().data();
  int q = ContainingQuadrant(cell_rect, rect);
  if (q >= 0 && GetChild(p, q) != kInvalidPageId) {
    // The object may be deeper (it was inserted when depth allowed), or at
    // this cell if max_depth stopped it; try deeper first.
    PageId child = GetChild(p, q);
    Rect qr = Quadrant(cell_rect, q);
    ref.value().Release();
    CDB_RETURN_IF_ERROR(DeleteRec(child, qr, rect, id, removed));
    if (*removed) return Status::OK();
    Result<PageRef> again = pager_->Fetch(cell);
    if (!again.ok()) return again.status();
    ref = std::move(again);
    p = ref.value().data();
  }

  // Gather the whole cell list, remove the entry, rewrite compacted.
  std::vector<CellEntry> entries;
  uint16_t n = GetCount(p);
  for (size_t i = 0; i < n; ++i) entries.push_back(GetEntry(p + kCellHeader, i));
  std::vector<PageId> chain_pages;
  PageId chain = GetOverflow(p);
  while (chain != kInvalidPageId) {
    chain_pages.push_back(chain);
    Result<PageRef> oref = pager_->Fetch(chain);
    if (!oref.ok()) return oref.status();
    const char* op = oref.value().data();
    uint16_t oc;
    std::memcpy(&oc, op + 4, 2);
    for (size_t i = 0; i < oc; ++i) {
      entries.push_back(GetEntry(op + kOverflowHeader, i));
    }
    std::memcpy(&chain, op, 4);
  }
  auto it = std::find_if(entries.begin(), entries.end(), [&](const CellEntry& e) {
    return e.id == id && e.rect.Contains(rect) && rect.Contains(e.rect);
  });
  if (it == entries.end()) return Status::OK();  // Not here.
  entries.erase(it);
  *removed = true;

  // Rewrite: inline region first, remainder into reused overflow pages.
  const size_t cap = CellCapacity(pager_->page_size());
  const size_t ocap = OverflowCapacity(pager_->page_size());
  size_t inline_n = std::min(cap, entries.size());
  for (size_t i = 0; i < inline_n; ++i) PutEntry(p + kCellHeader, i, entries[i]);
  SetCount(p, static_cast<uint16_t>(inline_n));
  size_t pos = inline_n;
  PageId prev_link = kInvalidPageId;
  size_t used_chain = 0;
  // Rebuild the chain front-to-back over the reused pages.
  std::vector<std::pair<PageId, std::pair<size_t, size_t>>> assignments;
  while (pos < entries.size() && used_chain < chain_pages.size()) {
    size_t take = std::min(ocap, entries.size() - pos);
    assignments.push_back({chain_pages[used_chain], {pos, take}});
    pos += take;
    ++used_chain;
  }
  // Write pages in reverse so next links are known.
  for (size_t i = assignments.size(); i-- > 0;) {
    Result<PageRef> oref = pager_->Fetch(assignments[i].first);
    if (!oref.ok()) return oref.status();
    char* op = oref.value().data();
    std::memcpy(op, &prev_link, 4);
    uint16_t cnt = static_cast<uint16_t>(assignments[i].second.second);
    std::memcpy(op + 4, &cnt, 2);
    for (size_t j = 0; j < cnt; ++j) {
      PutEntry(op + kOverflowHeader, j,
               entries[assignments[i].second.first + j]);
    }
    oref.value().MarkDirty();
    prev_link = assignments[i].first;
  }
  SetOverflow(p, prev_link);
  ref.value().MarkDirty();
  // Free surplus overflow pages.
  for (size_t i = used_chain; i < chain_pages.size(); ++i) {
    CDB_RETURN_IF_ERROR(pager_->Free(chain_pages[i]));
  }
  return Status::OK();
}

Status MxCifQuadtree::Delete(const Rect& rect, TupleId id) {
  bool removed = false;
  CDB_RETURN_IF_ERROR(DeleteRec(root_, world_, rect, id, &removed));
  if (!removed) return Status::NotFound("entry not in quadtree");
  --count_;
  return Status::OK();
}

}  // namespace cdb
