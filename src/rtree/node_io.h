// Shared on-page layout for R-family tree nodes (internal header).
//
//   u8 type (0 leaf, 1 internal) | u8 pad | u16 count | u32 pad
//   count * { f64 xlo, f64 ylo, f64 xhi, f64 yhi, u32 id-or-child }
//
// Used by both the R+-tree (rplus_tree.cc) and the Guttman R-tree
// (guttman_rtree.cc).

#ifndef CDB_RTREE_NODE_IO_H_
#define CDB_RTREE_NODE_IO_H_

#include <cstring>
#include <vector>

#include "geometry/rect.h"
#include "storage/pager.h"

namespace cdb {
namespace rnode {

struct Entry {
  Rect rect;
  uint32_t id;  // Tuple id at leaves; child page id internally.
};

inline constexpr size_t kHeader = 8;
inline constexpr size_t kEntrySize = 36;

inline size_t NodeCapacity(size_t page_size) {
  return (page_size - kHeader) / kEntrySize;
}

inline Status WriteNode(Pager* pager, PageId page, bool leaf,
                        const std::vector<Entry>& entries) {
  Result<PageRef> ref = pager->Fetch(page);
  if (!ref.ok()) return ref.status();
  char* p = ref.value().data();
  p[0] = leaf ? 0 : 1;
  p[1] = 0;
  uint16_t n = static_cast<uint16_t>(entries.size());
  std::memcpy(p + 2, &n, 2);
  std::memset(p + 4, 0, 4);
  char* e = p + kHeader;
  for (const Entry& entry : entries) {
    std::memcpy(e, &entry.rect.xlo, 8);
    std::memcpy(e + 8, &entry.rect.ylo, 8);
    std::memcpy(e + 16, &entry.rect.xhi, 8);
    std::memcpy(e + 24, &entry.rect.yhi, 8);
    std::memcpy(e + 32, &entry.id, 4);
    e += kEntrySize;
  }
  ref.value().MarkDirty();
  return Status::OK();
}

/// Reads a node; counts one page fetch into `fetches` when non-null.
inline Status ReadNode(const Pager* pager_const, PageId page, bool* leaf,
                       std::vector<Entry>* entries,
                       uint64_t* fetches = nullptr) {
  Pager* pager = const_cast<Pager*>(pager_const);
  Result<PageRef> ref = pager->Fetch(page);
  if (!ref.ok()) return ref.status();
  if (fetches != nullptr) ++*fetches;
  const char* p = ref.value().data();
  *leaf = p[0] == 0;
  uint16_t n;
  std::memcpy(&n, p + 2, 2);
  entries->clear();
  entries->reserve(n);
  const char* e = p + kHeader;
  for (uint16_t i = 0; i < n; ++i) {
    Entry entry;
    std::memcpy(&entry.rect.xlo, e, 8);
    std::memcpy(&entry.rect.ylo, e + 8, 8);
    std::memcpy(&entry.rect.xhi, e + 16, 8);
    std::memcpy(&entry.rect.yhi, e + 24, 8);
    std::memcpy(&entry.id, e + 32, 4);
    entries->push_back(entry);
    e += kEntrySize;
  }
  return Status::OK();
}

inline Rect MbrOf(const std::vector<Entry>& entries) {
  Rect r = Rect::Empty();
  for (const Entry& e : entries) r = r.Enclose(e.rect);
  return r;
}

}  // namespace rnode
}  // namespace cdb

#endif  // CDB_RTREE_NODE_IO_H_
