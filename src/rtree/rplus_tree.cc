#include "rtree/rplus_tree.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace cdb {

namespace {

constexpr size_t kHeader = 8;      // type u8, pad u8, count u16, pad u32.
constexpr size_t kEntrySize = 36;  // 4 * f64 + u32.

size_t NodeCapacity(size_t page_size) { return (page_size - kHeader) / kEntrySize; }

// When the cheapest sweep cut would clip more than this fraction of the
// entries, fall back to a non-clipping center split (hybrid R/R+ behaviour;
// keeps the structure from exploding on large objects — the regime where
// the original R+-tree is known to degenerate, cf. Section 5's medium
// objects).
constexpr double kMaxClipFraction = 0.25;

}  // namespace

// --- Page I/O ------------------------------------------------------------

Status RPlusTree::WriteNode(PageId page, bool leaf,
                            const std::vector<Entry>& entries) {
  Result<PageRef> ref = pager_->Fetch(page);
  if (!ref.ok()) return ref.status();
  char* p = ref.value().data();
  p[0] = leaf ? 0 : 1;
  p[1] = 0;
  uint16_t n = static_cast<uint16_t>(entries.size());
  std::memcpy(p + 2, &n, 2);
  std::memset(p + 4, 0, 4);
  char* e = p + kHeader;
  for (const Entry& entry : entries) {
    std::memcpy(e, &entry.rect.xlo, 8);
    std::memcpy(e + 8, &entry.rect.ylo, 8);
    std::memcpy(e + 16, &entry.rect.xhi, 8);
    std::memcpy(e + 24, &entry.rect.yhi, 8);
    std::memcpy(e + 32, &entry.id, 4);
    e += kEntrySize;
  }
  ref.value().MarkDirty();
  return Status::OK();
}

Status RPlusTree::ReadNode(PageId page, bool* leaf,
                           std::vector<Entry>* entries,
                           RTreeStats* stats) const {
  Result<PageRef> ref = pager_->Fetch(page);
  if (!ref.ok()) return ref.status();
  if (stats != nullptr) ++stats->page_fetches;
  const char* p = ref.value().data();
  *leaf = p[0] == 0;
  uint16_t n;
  std::memcpy(&n, p + 2, 2);
  entries->clear();
  entries->reserve(n);
  const char* e = p + kHeader;
  for (uint16_t i = 0; i < n; ++i) {
    Entry entry;
    std::memcpy(&entry.rect.xlo, e, 8);
    std::memcpy(&entry.rect.ylo, e + 8, 8);
    std::memcpy(&entry.rect.xhi, e + 16, 8);
    std::memcpy(&entry.rect.yhi, e + 24, 8);
    std::memcpy(&entry.id, e + 32, 4);
    entries->push_back(entry);
    e += kEntrySize;
  }
  return Status::OK();
}

// --- Construction ----------------------------------------------------------

Status RPlusTree::Create(Pager* pager, std::unique_ptr<RPlusTree>* out) {
  std::unique_ptr<RPlusTree> tree(new RPlusTree(pager));
  Result<PageId> root = pager->Allocate();
  if (!root.ok()) return root.status();
  tree->root_ = root.value();
  CDB_RETURN_IF_ERROR(tree->WriteNode(tree->root_, /*leaf=*/true, {}));
  *out = std::move(tree);
  return Status::OK();
}

namespace {

// Sweep-based sequential partition (the R+ paper's Partition): recursively
// carves a set into groups of <= cap entries with axis-parallel cuts,
// clipping rectangles that cross a cut. The helpers work on a plain
// (rect, id) pair mirroring RPlusTree::Entry.
struct E {
  Rect rect;
  uint32_t id;
};

// Returns the cheapest cut along one axis: position after roughly `cap`
// entries when sorted by the low coordinate. Cost = number of crossings.
struct CutChoice {
  bool valid = false;
  bool x_axis = true;
  double at = 0;
  size_t crossings = 0;
};

CutChoice ChooseCut(const std::vector<E>& set, size_t cap, bool x_axis) {
  (void)cap;
  std::vector<double> lows;
  lows.reserve(set.size());
  for (const E& e : set) lows.push_back(x_axis ? e.rect.xlo : e.rect.ylo);
  std::sort(lows.begin(), lows.end());
  double min_low = lows.front();
  // Candidate cut: the median low coordinate (balanced, tile-like regions;
  // a sequential fill-factor cut would carve ultra-thin slabs that fragment
  // every object crossing them), advanced past ties with the minimum so
  // both sides are non-empty.
  size_t idx = lows.size() / 2;
  double at = lows[idx];
  if (at <= min_low) {
    auto it = std::upper_bound(lows.begin(), lows.end(), min_low);
    if (it == lows.end()) return {};  // All lows identical: no valid cut.
    at = *it;
  }
  CutChoice choice;
  choice.valid = true;
  choice.x_axis = x_axis;
  choice.at = at;
  for (const E& e : set) {
    double lo = x_axis ? e.rect.xlo : e.rect.ylo;
    double hi = x_axis ? e.rect.xhi : e.rect.yhi;
    if (lo < at && hi > at) ++choice.crossings;
  }
  return choice;
}

void PartitionRec(std::vector<E> set, size_t cap,
                  std::vector<std::vector<E>>* out) {
  if (set.size() <= cap) {
    if (!set.empty()) out->push_back(std::move(set));
    return;
  }
  CutChoice cx = ChooseCut(set, cap, /*x_axis=*/true);
  CutChoice cy = ChooseCut(set, cap, /*x_axis=*/false);
  CutChoice best;
  if (cx.valid && (!cy.valid || cx.crossings <= cy.crossings)) {
    best = cx;
  } else {
    best = cy;
  }

  if (!best.valid ||
      best.crossings >
          static_cast<size_t>(kMaxClipFraction *
                              static_cast<double>(set.size()))) {
    // Degenerate or clip-heavy: split by center without clipping (regions
    // may overlap; search correctness is unaffected).
    bool x_axis = !best.valid || (cx.valid && cy.valid &&
                                  cx.crossings <= cy.crossings) ||
                  (cx.valid && !cy.valid);
    std::sort(set.begin(), set.end(), [&](const E& a, const E& b) {
      double ca = x_axis ? a.rect.xlo + a.rect.xhi : a.rect.ylo + a.rect.yhi;
      double cb = x_axis ? b.rect.xlo + b.rect.xhi : b.rect.ylo + b.rect.yhi;
      return ca < cb;
    });
    size_t half = set.size() / 2;
    std::vector<E> left(set.begin(), set.begin() + static_cast<long>(half));
    std::vector<E> right(set.begin() + static_cast<long>(half), set.end());
    PartitionRec(std::move(left), cap, out);
    PartitionRec(std::move(right), cap, out);
    return;
  }

  std::vector<E> left, right;
  for (const E& e : set) {
    double lo = best.x_axis ? e.rect.xlo : e.rect.ylo;
    double hi = best.x_axis ? e.rect.xhi : e.rect.yhi;
    if (hi <= best.at) {
      left.push_back(e);
    } else if (lo >= best.at) {
      right.push_back(e);
    } else {
      // Clip into both sides (the R+-tree's signature move).
      E l = e, r = e;
      if (best.x_axis) {
        l.rect.xhi = best.at;
        r.rect.xlo = best.at;
      } else {
        l.rect.yhi = best.at;
        r.rect.ylo = best.at;
      }
      left.push_back(l);
      right.push_back(r);
    }
  }
  PartitionRec(std::move(left), cap, out);
  PartitionRec(std::move(right), cap, out);
}

Rect MbrOf(const std::vector<E>& entries) {
  Rect r = Rect::Empty();
  for (const E& e : entries) r = r.Enclose(e.rect);
  return r;
}

}  // namespace

Status RPlusTree::BulkBuild(Pager* pager,
                            std::vector<std::pair<Rect, TupleId>> entries,
                            std::unique_ptr<RPlusTree>* out) {
  std::unique_ptr<RPlusTree> tree(new RPlusTree(pager));
  const size_t cap = NodeCapacity(pager->page_size());
  tree->count_ = entries.size();

  if (entries.empty()) {
    Result<PageId> root = pager->Allocate();
    if (!root.ok()) return root.status();
    tree->root_ = root.value();
    CDB_RETURN_IF_ERROR(tree->WriteNode(tree->root_, true, {}));
    *out = std::move(tree);
    return Status::OK();
  }

  std::vector<E> all;
  all.reserve(entries.size());
  for (const auto& [rect, id] : entries) {
    if (rect.IsEmpty()) {
      return Status::InvalidArgument("R+-tree entries must be bounded");
    }
    all.push_back({rect, id});
  }

  // Leaf level: sweep partition with clipping.
  std::vector<std::vector<E>> groups;
  PartitionRec(std::move(all), std::max<size_t>(1, cap * 7 / 10), &groups);

  // Write leaves; build the next level from their MBRs, grouped
  // center-sorted (STR-style) without clipping.
  std::vector<E> level;
  for (auto& g : groups) {
    Result<PageId> page = pager->Allocate();
    if (!page.ok()) return page.status();
    std::vector<Entry> node;
    node.reserve(g.size());
    for (const E& e : g) node.push_back({e.rect, e.id});
    CDB_RETURN_IF_ERROR(tree->WriteNode(page.value(), true, node));
    level.push_back({MbrOf(g), page.value()});
  }
  uint32_t height = 1;
  while (level.size() > 1) {
    std::sort(level.begin(), level.end(), [](const E& a, const E& b) {
      if (a.rect.xlo + a.rect.xhi != b.rect.xlo + b.rect.xhi) {
        return a.rect.xlo + a.rect.xhi < b.rect.xlo + b.rect.xhi;
      }
      return a.rect.ylo + a.rect.yhi < b.rect.ylo + b.rect.yhi;
    });
    std::vector<E> next;
    for (size_t i = 0; i < level.size(); i += cap) {
      size_t end = std::min(level.size(), i + cap);
      std::vector<E> group(level.begin() + static_cast<long>(i),
                           level.begin() + static_cast<long>(end));
      Result<PageId> page = pager->Allocate();
      if (!page.ok()) return page.status();
      std::vector<Entry> node;
      for (const E& e : group) node.push_back({e.rect, e.id});
      CDB_RETURN_IF_ERROR(tree->WriteNode(page.value(), false, node));
      next.push_back({MbrOf(group), page.value()});
    }
    level = std::move(next);
    ++height;
  }
  tree->root_ = level.front().id;
  tree->height_ = height;
  *out = std::move(tree);
  return Status::OK();
}

// --- Search -----------------------------------------------------------------

template <typename Pred>
Status RPlusTree::SearchRec(PageId page, const Pred& pred,
                            std::vector<TupleId>* out, RTreeStats* stats,
                            const QueryContext* ctx) const {
  // Checkpoint before each node read (a page-fetch boundary); ReadNode
  // materializes the node and leaves nothing pinned, so aborting between
  // nodes is pin-clean.
  CDB_RETURN_IF_ERROR(CheckQueryContext(ctx));
  bool leaf;
  std::vector<Entry> entries;
  CDB_RETURN_IF_ERROR(ReadNode(page, &leaf, &entries, stats));
  for (const Entry& e : entries) {
    if (stats != nullptr) ++stats->entries_scanned;
    if (!pred(e.rect)) continue;
    if (leaf) {
      out->push_back(e.id);
    } else {
      CDB_RETURN_IF_ERROR(SearchRec(e.id, pred, out, stats, ctx));
    }
  }
  return Status::OK();
}

Result<std::vector<TupleId>> RPlusTree::SearchHalfPlane(
    const HalfPlaneQuery& q, RTreeStats* stats, const QueryContext* ctx) {
  std::vector<TupleId> out;
  Status st = SearchRec(
      root_, [&](const Rect& r) { return r.IntersectsHalfPlane(q); }, &out,
      stats, ctx);
  if (!st.ok()) return st;
  std::sort(out.begin(), out.end());
  size_t before = out.size();
  out.erase(std::unique(out.begin(), out.end()), out.end());
  if (stats != nullptr) stats->duplicates += before - out.size();
  return out;
}

Result<std::vector<TupleId>> RPlusTree::SearchRect(const Rect& window,
                                                   RTreeStats* stats) {
  std::vector<TupleId> out;
  Status st = SearchRec(
      root_, [&](const Rect& r) { return r.Intersects(window); }, &out,
      stats, /*ctx=*/nullptr);
  if (!st.ok()) return st;
  std::sort(out.begin(), out.end());
  size_t before = out.size();
  out.erase(std::unique(out.begin(), out.end()), out.end());
  if (stats != nullptr) stats->duplicates += before - out.size();
  return out;
}

// --- Dynamic insert -----------------------------------------------------------

namespace {

// rect minus cover, decomposed into at most four rectangles.
void SubtractRect(const Rect& rect, const Rect& cover,
                  std::vector<Rect>* out) {
  Rect overlap = rect.Intersection(cover);
  if (overlap.IsEmpty()) {
    out->push_back(rect);
    return;
  }
  if (rect.ylo < overlap.ylo) {
    out->push_back(Rect(rect.xlo, rect.ylo, rect.xhi, overlap.ylo));
  }
  if (overlap.yhi < rect.yhi) {
    out->push_back(Rect(rect.xlo, overlap.yhi, rect.xhi, rect.yhi));
  }
  if (rect.xlo < overlap.xlo) {
    out->push_back(Rect(rect.xlo, overlap.ylo, overlap.xlo, overlap.yhi));
  }
  if (overlap.xhi < rect.xhi) {
    out->push_back(Rect(overlap.xhi, overlap.ylo, rect.xhi, overlap.yhi));
  }
}

}  // namespace

Status RPlusTree::InsertRec(PageId page, uint32_t depth, const Rect& rect,
                            TupleId id, std::vector<Entry>* split_out) {
  bool leaf;
  std::vector<Entry> entries;
  CDB_RETURN_IF_ERROR(ReadNode(page, &leaf, &entries, nullptr));
  const size_t cap = NodeCapacity(pager_->page_size());

  if (leaf) {
    entries.push_back({rect, id});
    if (entries.size() <= cap) {
      return WriteNode(page, true, entries);
    }
    // Overflow: sweep-partition the leaf into groups; keep the first in
    // place, surface the rest to the parent.
    std::vector<E> set;
    for (const Entry& e : entries) set.push_back({e.rect, e.id});
    std::vector<std::vector<E>> groups;
    PartitionRec(std::move(set), std::max<size_t>(1, cap * 7 / 10), &groups);
    for (size_t g = 0; g < groups.size(); ++g) {
      std::vector<Entry> node;
      for (const E& e : groups[g]) node.push_back({e.rect, e.id});
      PageId target = page;
      if (g > 0) {
        Result<PageId> fresh = pager_->Allocate();
        if (!fresh.ok()) return fresh.status();
        target = fresh.value();
        split_out->push_back({MbrOf(groups[g]), target});
      }
      CDB_RETURN_IF_ERROR(WriteNode(target, true, node));
    }
    return Status::OK();
  }

  // Internal node: distribute *disjoint* clipped pieces among the children.
  // Each child receives the parts of the still-uncovered remainder that its
  // region covers; the remainder then shrinks. (Clipping against every
  // overlapping child independently would insert overlapping areas into
  // several children — a duplication feedback loop once child regions
  // overlap, which blows the tree up super-linearly.) Whatever stays
  // uncovered goes to the child needing the least enlargement.
  std::vector<Rect> uncovered{rect};
  std::vector<Entry> pending_splits;
  bool dirty = false;
  for (Entry& child : entries) {
    if (uncovered.empty()) break;
    std::vector<Rect> next;
    for (const Rect& u : uncovered) {
      Rect piece = u.Intersection(child.rect);
      if (!piece.IsEmpty() && piece.Area() > 0.0) {
        CDB_RETURN_IF_ERROR(
            InsertRec(child.id, depth + 1, piece, id, &pending_splits));
      }
      SubtractRect(u, child.rect, &next);
    }
    uncovered = std::move(next);
  }
  for (const Rect& piece : uncovered) {
    if (piece.IsEmpty() || piece.Area() == 0.0) continue;
    if (entries.empty()) {
      // Internal node with no children cannot happen (tree grows from a
      // leaf root); guard anyway.
      return Status::Corruption("internal R+-tree node without children");
    }
    size_t best = 0;
    double best_growth = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < entries.size(); ++i) {
      double growth =
          entries[i].rect.Enclose(piece).Area() - entries[i].rect.Area();
      if (growth < best_growth) {
        best_growth = growth;
        best = i;
      }
    }
    entries[best].rect = entries[best].rect.Enclose(piece);
    dirty = true;
    CDB_RETURN_IF_ERROR(
        InsertRec(entries[best].id, depth + 1, piece, id, &pending_splits));
  }
  if (!pending_splits.empty()) {
    for (const Entry& e : pending_splits) entries.push_back(e);
    dirty = true;
  }
  if (entries.size() > cap) {
    // Center-sorted split without downward propagation (overlap allowed).
    std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
      return a.rect.xlo + a.rect.xhi < b.rect.xlo + b.rect.xhi;
    });
    size_t half = entries.size() / 2;
    std::vector<Entry> right(entries.begin() + static_cast<long>(half),
                             entries.end());
    entries.resize(half);
    Result<PageId> fresh = pager_->Allocate();
    if (!fresh.ok()) return fresh.status();
    CDB_RETURN_IF_ERROR(WriteNode(fresh.value(), false, right));
    Rect mbr = Rect::Empty();
    for (const Entry& e : right) mbr = mbr.Enclose(e.rect);
    split_out->push_back({mbr, fresh.value()});
    dirty = true;
  }
  if (dirty) return WriteNode(page, false, entries);
  return Status::OK();
}

Status RPlusTree::Insert(const Rect& rect, TupleId id) {
  if (rect.IsEmpty()) {
    return Status::InvalidArgument("R+-tree entries must be bounded");
  }
  std::vector<Entry> splits;
  CDB_RETURN_IF_ERROR(InsertRec(root_, 0, rect, id, &splits));
  if (!splits.empty()) {
    // Grow a new root above the old one.
    bool leaf;
    std::vector<Entry> old_entries;
    CDB_RETURN_IF_ERROR(ReadNode(root_, &leaf, &old_entries, nullptr));
    Rect mbr = Rect::Empty();
    for (const Entry& e : old_entries) mbr = mbr.Enclose(e.rect);
    std::vector<Entry> new_root{{mbr, root_}};
    for (const Entry& e : splits) new_root.push_back(e);
    Result<PageId> fresh = pager_->Allocate();
    if (!fresh.ok()) return fresh.status();
    CDB_RETURN_IF_ERROR(WriteNode(fresh.value(), false, new_root));
    root_ = fresh.value();
    ++height_;
  }
  ++count_;
  return Status::OK();
}

// --- Delete -----------------------------------------------------------------

Status RPlusTree::DeleteRec(PageId page, const Rect& rect, TupleId id,
                            uint64_t* removed) {
  bool leaf;
  std::vector<Entry> entries;
  CDB_RETURN_IF_ERROR(ReadNode(page, &leaf, &entries, nullptr));
  if (leaf) {
    size_t before = entries.size();
    entries.erase(std::remove_if(entries.begin(), entries.end(),
                                 [&](const Entry& e) {
                                   return e.id == id &&
                                          e.rect.Intersects(rect);
                                 }),
                  entries.end());
    if (entries.size() != before) {
      *removed += before - entries.size();
      return WriteNode(page, true, entries);
    }
    return Status::OK();
  }
  for (const Entry& child : entries) {
    if (child.rect.Intersects(rect)) {
      CDB_RETURN_IF_ERROR(DeleteRec(child.id, rect, id, removed));
    }
  }
  return Status::OK();
}

Status RPlusTree::Delete(const Rect& rect, TupleId id) {
  uint64_t removed = 0;
  CDB_RETURN_IF_ERROR(DeleteRec(root_, rect, id, &removed));
  if (removed == 0) return Status::NotFound("object not in tree");
  --count_;
  return Status::OK();
}

// --- Invariants ----------------------------------------------------------------

Status RPlusTree::CheckRec(PageId page, uint32_t depth, const Rect& region,
                           std::vector<Rect>* leaf_regions) const {
  bool leaf;
  std::vector<Entry> entries;
  CDB_RETURN_IF_ERROR(ReadNode(page, &leaf, &entries, nullptr));
  for (const Entry& e : entries) {
    Rect grown(region.xlo - 1e-9, region.ylo - 1e-9, region.xhi + 1e-9,
               region.yhi + 1e-9);
    if (!grown.Contains(e.rect)) {
      return Status::Corruption("entry escapes its node region");
    }
  }
  if (leaf) {
    if (depth + 1 != height_) return Status::Corruption("leaf at wrong depth");
    Rect mbr = Rect::Empty();
    for (const Entry& e : entries) mbr = mbr.Enclose(e.rect);
    if (!mbr.IsEmpty()) leaf_regions->push_back(mbr);
    return Status::OK();
  }
  if (depth + 1 >= height_) return Status::Corruption("internal too deep");
  for (const Entry& e : entries) {
    CDB_RETURN_IF_ERROR(CheckRec(e.id, depth + 1, e.rect, leaf_regions));
  }
  return Status::OK();
}

Status RPlusTree::CheckInvariants() const {
  std::vector<Rect> leaf_regions;
  Rect everything(-1e300, -1e300, 1e300, 1e300);
  return CheckRec(root_, 0, everything, &leaf_regions);
}

}  // namespace cdb
