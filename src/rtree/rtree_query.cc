#include "rtree/rtree_query.h"

#include "constraint/refine_batch.h"
#include "obs/metrics.h"

namespace cdb {

namespace {

template <typename Tree>
Result<std::vector<TupleId>> SelectImpl(Tree* tree, Relation* relation,
                                        SelectionType type,
                                        const HalfPlaneQuery& q,
                                        QueryStats* stats,
                                        obs::ExplainProfile* profile,
                                        const QueryContext* ctx) {
  QueryStats local;
  QueryStats* st = stats != nullptr ? stats : &local;
  *st = QueryStats();
  obs::Tracer tracer("rtree/select", tree->pager(), relation->pager());

  // The whole execution runs inside a lambda so every exit — including a
  // deadline/cancellation abort — flows through FinishQueryTrace and the
  // filter-accounting tail below.
  Result<std::vector<TupleId>> result = [&]() -> Result<std::vector<TupleId>> {
    RTreeStats rstats;
    Result<std::vector<TupleId>> candidates = [&] {
      CDB_TRACE_SPAN("filter");
      return tree->SearchHalfPlane(q, &rstats, ctx);
    }();
    if (!candidates.ok()) return candidates.status();
    st->candidates = candidates.value().size() + rstats.duplicates;
    st->duplicates = rstats.duplicates;
    st->filter.dedup_dropped = rstats.duplicates;

    static obs::Counter* const lp_calls =
        obs::GlobalMetrics().counter("rtree.refine.lp_calls");
    Status s = RefineBatch2D(*relation, type, q, lp_calls, ctx,
                             &candidates.value(), &st->filter,
                             &st->false_hits);
    if (!s.ok()) return {s};
    return std::move(candidates.value());
  }();

  obs::PhaseCost totals = obs::FinishQueryTrace(&tracer, profile);
  st->index_page_fetches = totals.index_fetches;  // Logical (decision 11).
  st->tuple_page_fetches = totals.tuple_reads;    // Physical (decision 11).
  if (result.ok()) {
    st->results = result.value().size();
    st->filter.candidates = st->candidates;
    st->filter.results = st->results;
  } else {
    // Early exit: a search-phase abort discards its partial candidate set
    // (st->candidates stays 0); a refine-phase abort leaves the untested
    // tail, booked as abandoned so the partition still balances.
    st->filter.candidates = st->candidates;
    st->filter.abandoned =
        st->candidates -
        (st->filter.dedup_dropped + st->filter.early_accepts +
         st->filter.refine_accepts + st->filter.refine_rejects);
    st->results = st->filter.early_accepts + st->filter.refine_accepts;
    st->filter.results = st->results;
  }
  if (profile != nullptr) profile->filter = st->filter;
  return result;
}

}  // namespace

Result<std::vector<TupleId>> RTreeSelect(RPlusTree* tree, Relation* relation,
                                         SelectionType type,
                                         const HalfPlaneQuery& q,
                                         QueryStats* stats,
                                         obs::ExplainProfile* profile,
                                         const QueryContext* ctx) {
  return SelectImpl(tree, relation, type, q, stats, profile, ctx);
}

Result<std::vector<TupleId>> RTreeSelect(GuttmanRTree* tree,
                                         Relation* relation,
                                         SelectionType type,
                                         const HalfPlaneQuery& q,
                                         QueryStats* stats,
                                         obs::ExplainProfile* profile,
                                         const QueryContext* ctx) {
  return SelectImpl(tree, relation, type, q, stats, profile, ctx);
}

Result<std::vector<TupleId>> RTreeSelect(MxCifQuadtree* tree,
                                         Relation* relation,
                                         SelectionType type,
                                         const HalfPlaneQuery& q,
                                         QueryStats* stats,
                                         obs::ExplainProfile* profile,
                                         const QueryContext* ctx) {
  return SelectImpl(tree, relation, type, q, stats, profile, ctx);
}

}  // namespace cdb
