#include "rtree/rtree_query.h"

#include "geometry/dual.h"
#include "obs/metrics.h"

namespace cdb {

namespace {

template <typename Tree>
Result<std::vector<TupleId>> SelectImpl(Tree* tree, Relation* relation,
                                        SelectionType type,
                                        const HalfPlaneQuery& q,
                                        QueryStats* stats,
                                        obs::ExplainProfile* profile) {
  QueryStats local;
  QueryStats* st = stats != nullptr ? stats : &local;
  *st = QueryStats();
  obs::Tracer tracer("rtree/select", tree->pager(), relation->pager());

  RTreeStats rstats;
  Result<std::vector<TupleId>> candidates = [&] {
    CDB_TRACE_SPAN("filter");
    return tree->SearchHalfPlane(q, &rstats);
  }();
  if (!candidates.ok()) return candidates.status();
  st->candidates = candidates.value().size() + rstats.duplicates;
  st->duplicates = rstats.duplicates;
  st->filter.dedup_dropped = rstats.duplicates;

  static obs::Counter* const lp_calls =
      obs::GlobalMetrics().counter("rtree.refine.lp_calls");
  std::vector<TupleId> kept;
  kept.reserve(candidates.value().size());
  {
    CDB_TRACE_SPAN("refine");
    for (TupleId id : candidates.value()) {
      GeneralizedTuple tuple;
      {
        CDB_TRACE_SPAN("fetch-tuple");
        Status s = relation->Get(id, &tuple);
        if (!s.ok()) return {s};
      }
      CDB_TRACE_SPAN("lp");
      lp_calls->Increment();
      bool hit = type == SelectionType::kAll
                     ? ExactAll(tuple.constraints(), q)
                     : ExactExist(tuple.constraints(), q);
      if (hit) {
        kept.push_back(id);
        ++st->filter.refine_accepts;
      } else {
        ++st->false_hits;
        ++st->filter.refine_rejects;
      }
    }
  }
  obs::PhaseCost totals = obs::FinishQueryTrace(&tracer, profile);
  st->index_page_fetches = totals.index_fetches;  // Logical (decision 11).
  st->tuple_page_fetches = totals.tuple_reads;    // Physical (decision 11).
  st->results = kept.size();
  st->filter.candidates = st->candidates;
  st->filter.results = st->results;
  if (profile != nullptr) profile->filter = st->filter;
  return kept;
}

}  // namespace

Result<std::vector<TupleId>> RTreeSelect(RPlusTree* tree, Relation* relation,
                                         SelectionType type,
                                         const HalfPlaneQuery& q,
                                         QueryStats* stats,
                                         obs::ExplainProfile* profile) {
  return SelectImpl(tree, relation, type, q, stats, profile);
}

Result<std::vector<TupleId>> RTreeSelect(GuttmanRTree* tree,
                                         Relation* relation,
                                         SelectionType type,
                                         const HalfPlaneQuery& q,
                                         QueryStats* stats,
                                         obs::ExplainProfile* profile) {
  return SelectImpl(tree, relation, type, q, stats, profile);
}

Result<std::vector<TupleId>> RTreeSelect(MxCifQuadtree* tree,
                                         Relation* relation,
                                         SelectionType type,
                                         const HalfPlaneQuery& q,
                                         QueryStats* stats,
                                         obs::ExplainProfile* profile) {
  return SelectImpl(tree, relation, type, q, stats, profile);
}

}  // namespace cdb
