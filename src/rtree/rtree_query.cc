#include "rtree/rtree_query.h"

#include "geometry/dual.h"

namespace cdb {

namespace {

template <typename Tree>
Result<std::vector<TupleId>> SelectImpl(Tree* tree, Relation* relation,
                                        SelectionType type,
                                        const HalfPlaneQuery& q,
                                        QueryStats* stats) {
  QueryStats local;
  QueryStats* st = stats != nullptr ? stats : &local;
  *st = QueryStats();
  IoStats tuple_before = relation->pager()->stats();

  RTreeStats rstats;
  Result<std::vector<TupleId>> candidates = tree->SearchHalfPlane(q, &rstats);
  if (!candidates.ok()) return candidates.status();
  st->index_page_fetches = rstats.page_fetches;
  st->candidates = candidates.value().size() + rstats.duplicates;
  st->duplicates = rstats.duplicates;

  std::vector<TupleId> kept;
  kept.reserve(candidates.value().size());
  for (TupleId id : candidates.value()) {
    GeneralizedTuple tuple;
    Status s = relation->Get(id, &tuple);
    if (!s.ok()) return s;
    bool hit = type == SelectionType::kAll
                   ? ExactAll(tuple.constraints(), q)
                   : ExactExist(tuple.constraints(), q);
    if (hit) {
      kept.push_back(id);
    } else {
      ++st->false_hits;
    }
  }
  st->tuple_page_fetches =
      relation->pager()->stats().Delta(tuple_before).page_reads;
  st->results = kept.size();
  return kept;
}

}  // namespace

Result<std::vector<TupleId>> RTreeSelect(RPlusTree* tree, Relation* relation,
                                         SelectionType type,
                                         const HalfPlaneQuery& q,
                                         QueryStats* stats) {
  return SelectImpl(tree, relation, type, q, stats);
}

Result<std::vector<TupleId>> RTreeSelect(GuttmanRTree* tree,
                                         Relation* relation,
                                         SelectionType type,
                                         const HalfPlaneQuery& q,
                                         QueryStats* stats) {
  return SelectImpl(tree, relation, type, q, stats);
}

Result<std::vector<TupleId>> RTreeSelect(MxCifQuadtree* tree,
                                         Relation* relation,
                                         SelectionType type,
                                         const HalfPlaneQuery& q,
                                         QueryStats* stats) {
  return SelectImpl(tree, relation, type, q, stats);
}

}  // namespace cdb
