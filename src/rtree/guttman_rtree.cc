#include "rtree/guttman_rtree.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "rtree/node_io.h"

namespace cdb {

namespace {

using rnode::Entry;
using rnode::MbrOf;
using rnode::NodeCapacity;
using rnode::ReadNode;
using rnode::WriteNode;

size_t MinFill(size_t cap) { return std::max<size_t>(1, cap * 2 / 5); }

double Enlargement(const Rect& base, const Rect& add) {
  return base.Enclose(add).Area() - base.Area();
}

// Guttman's quadratic split: distributes `entries` into two groups.
void QuadraticSplit(std::vector<Entry> entries, size_t cap,
                    std::vector<Entry>* g1, std::vector<Entry>* g2) {
  g1->clear();
  g2->clear();
  // PickSeeds: the pair wasting the most area together.
  size_t s1 = 0, s2 = 1;
  double worst = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < entries.size(); ++i) {
    for (size_t j = i + 1; j < entries.size(); ++j) {
      double waste = entries[i].rect.Enclose(entries[j].rect).Area() -
                     entries[i].rect.Area() - entries[j].rect.Area();
      if (waste > worst) {
        worst = waste;
        s1 = i;
        s2 = j;
      }
    }
  }
  g1->push_back(entries[s1]);
  g2->push_back(entries[s2]);
  Rect r1 = entries[s1].rect, r2 = entries[s2].rect;
  std::vector<bool> used(entries.size(), false);
  used[s1] = used[s2] = true;
  size_t remaining = entries.size() - 2;
  const size_t min_fill = MinFill(cap);

  while (remaining > 0) {
    // Force assignment when a group must take all the rest to reach the
    // minimum fill.
    if (g1->size() + remaining == min_fill) {
      for (size_t i = 0; i < entries.size(); ++i) {
        if (!used[i]) {
          g1->push_back(entries[i]);
          used[i] = true;
        }
      }
      break;
    }
    if (g2->size() + remaining == min_fill) {
      for (size_t i = 0; i < entries.size(); ++i) {
        if (!used[i]) {
          g2->push_back(entries[i]);
          used[i] = true;
        }
      }
      break;
    }
    // PickNext: the entry with the strongest group preference.
    size_t best = 0;
    double best_diff = -1;
    for (size_t i = 0; i < entries.size(); ++i) {
      if (used[i]) continue;
      double d = std::fabs(Enlargement(r1, entries[i].rect) -
                           Enlargement(r2, entries[i].rect));
      if (d > best_diff) {
        best_diff = d;
        best = i;
      }
    }
    used[best] = true;
    --remaining;
    double e1 = Enlargement(r1, entries[best].rect);
    double e2 = Enlargement(r2, entries[best].rect);
    bool to_first = e1 < e2 || (e1 == e2 && r1.Area() <= r2.Area());
    if (to_first) {
      g1->push_back(entries[best]);
      r1 = r1.Enclose(entries[best].rect);
    } else {
      g2->push_back(entries[best]);
      r2 = r2.Enclose(entries[best].rect);
    }
  }
}

}  // namespace

Status GuttmanRTree::Create(Pager* pager, std::unique_ptr<GuttmanRTree>* out) {
  std::unique_ptr<GuttmanRTree> tree(new GuttmanRTree(pager));
  Result<PageId> root = pager->Allocate();
  if (!root.ok()) return root.status();
  tree->root_ = root.value();
  CDB_RETURN_IF_ERROR(WriteNode(pager, tree->root_, /*leaf=*/true, {}));
  *out = std::move(tree);
  return Status::OK();
}

Status GuttmanRTree::BulkBuild(Pager* pager,
                               std::vector<std::pair<Rect, TupleId>> input,
                               std::unique_ptr<GuttmanRTree>* out) {
  std::unique_ptr<GuttmanRTree> tree(new GuttmanRTree(pager));
  tree->count_ = input.size();
  const size_t cap = NodeCapacity(pager->page_size());
  const size_t fill = std::max<size_t>(2, cap * 7 / 10);

  if (input.empty()) return Create(pager, out);

  std::vector<Entry> level;
  for (const auto& [rect, id] : input) {
    if (rect.IsEmpty()) {
      return Status::InvalidArgument("R-tree entries must be bounded");
    }
    level.push_back({rect, id});
  }

  bool leaf_level = true;
  uint32_t height = 0;
  while (true) {
    ++height;
    if (level.size() <= cap) {
      Result<PageId> root = pager->Allocate();
      if (!root.ok()) return root.status();
      CDB_RETURN_IF_ERROR(WriteNode(pager, root.value(), leaf_level, level));
      tree->root_ = root.value();
      tree->height_ = height;
      break;
    }
    // STR: sqrt(n/fill) vertical slabs by x-center, nodes by y-center.
    size_t node_count = (level.size() + fill - 1) / fill;
    size_t slabs = static_cast<size_t>(
        std::ceil(std::sqrt(static_cast<double>(node_count))));
    size_t per_slab = (level.size() + slabs - 1) / slabs;
    std::sort(level.begin(), level.end(), [](const Entry& a, const Entry& b) {
      return a.rect.xlo + a.rect.xhi < b.rect.xlo + b.rect.xhi;
    });
    std::vector<Entry> next;
    for (size_t s = 0; s < level.size(); s += per_slab) {
      size_t slab_end = std::min(level.size(), s + per_slab);
      std::sort(level.begin() + static_cast<long>(s),
                level.begin() + static_cast<long>(slab_end),
                [](const Entry& a, const Entry& b) {
                  return a.rect.ylo + a.rect.yhi < b.rect.ylo + b.rect.yhi;
                });
      for (size_t i = s; i < slab_end; i += fill) {
        size_t end = std::min(slab_end, i + fill);
        std::vector<Entry> node(level.begin() + static_cast<long>(i),
                                level.begin() + static_cast<long>(end));
        Result<PageId> page = pager->Allocate();
        if (!page.ok()) return page.status();
        CDB_RETURN_IF_ERROR(WriteNode(pager, page.value(), leaf_level, node));
        next.push_back({MbrOf(node), page.value()});
      }
    }
    level = std::move(next);
    leaf_level = false;
  }
  *out = std::move(tree);
  return Status::OK();
}

// --- Search ------------------------------------------------------------------

template <typename Pred>
Status GuttmanRTree::SearchRec(PageId page, const Pred& pred,
                               std::vector<TupleId>* out, RTreeStats* stats,
                               const QueryContext* ctx) const {
  // Checkpoint before each node read; see RPlusTree::SearchRec.
  CDB_RETURN_IF_ERROR(CheckQueryContext(ctx));
  bool leaf;
  std::vector<Entry> entries;
  CDB_RETURN_IF_ERROR(ReadNode(pager_, page, &leaf, &entries,
                               stats != nullptr ? &stats->page_fetches
                                                : nullptr));
  for (const Entry& e : entries) {
    if (stats != nullptr) ++stats->entries_scanned;
    if (!pred(e.rect)) continue;
    if (leaf) {
      out->push_back(e.id);
    } else {
      CDB_RETURN_IF_ERROR(SearchRec(e.id, pred, out, stats, ctx));
    }
  }
  return Status::OK();
}

Result<std::vector<TupleId>> GuttmanRTree::SearchHalfPlane(
    const HalfPlaneQuery& q, RTreeStats* stats, const QueryContext* ctx) {
  std::vector<TupleId> out;
  Status st = SearchRec(
      root_, [&](const Rect& r) { return r.IntersectsHalfPlane(q); }, &out,
      stats, ctx);
  if (!st.ok()) return st;
  std::sort(out.begin(), out.end());
  return out;  // No duplicates by construction (each object stored once).
}

Result<std::vector<TupleId>> GuttmanRTree::SearchRect(const Rect& window,
                                                      RTreeStats* stats) {
  std::vector<TupleId> out;
  Status st = SearchRec(
      root_, [&](const Rect& r) { return r.Intersects(window); }, &out,
      stats, /*ctx=*/nullptr);
  if (!st.ok()) return st;
  std::sort(out.begin(), out.end());
  return out;
}

// --- Insert ------------------------------------------------------------------

Status GuttmanRTree::InsertRec(PageId page, uint32_t level, const Rect& rect,
                               uint32_t id, uint32_t target_level, Rect* mbr,
                               SplitEntry* split) {
  bool leaf;
  std::vector<Entry> entries;
  CDB_RETURN_IF_ERROR(ReadNode(pager_, page, &leaf, &entries, nullptr));
  const size_t cap = NodeCapacity(pager_->page_size());

  if (level == target_level) {
    entries.push_back({rect, id});
  } else {
    // ChooseSubtree: least area enlargement, ties by smaller area.
    size_t best = 0;
    double best_growth = std::numeric_limits<double>::infinity();
    double best_area = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < entries.size(); ++i) {
      double growth = Enlargement(entries[i].rect, rect);
      double area = entries[i].rect.Area();
      if (growth < best_growth ||
          (growth == best_growth && area < best_area)) {
        best_growth = growth;
        best_area = area;
        best = i;
      }
    }
    Rect child_mbr;
    SplitEntry child_split;
    CDB_RETURN_IF_ERROR(InsertRec(entries[best].id, level + 1, rect, id,
                                  target_level, &child_mbr, &child_split));
    entries[best].rect = child_mbr;
    if (child_split.split) {
      entries.push_back({child_split.rect, child_split.page});
    }
  }

  split->split = false;
  if (entries.size() <= cap) {
    *mbr = MbrOf(entries);
    return WriteNode(pager_, page, leaf, entries);
  }

  std::vector<Entry> g1, g2;
  QuadraticSplit(std::move(entries), cap, &g1, &g2);
  Result<PageId> sibling = pager_->Allocate();
  if (!sibling.ok()) return sibling.status();
  CDB_RETURN_IF_ERROR(WriteNode(pager_, page, leaf, g1));
  CDB_RETURN_IF_ERROR(WriteNode(pager_, sibling.value(), leaf, g2));
  *mbr = MbrOf(g1);
  split->split = true;
  split->rect = MbrOf(g2);
  split->page = sibling.value();
  return Status::OK();
}

Status GuttmanRTree::Insert(const Rect& rect, TupleId id) {
  if (rect.IsEmpty()) {
    return Status::InvalidArgument("R-tree entries must be bounded");
  }
  Rect mbr;
  SplitEntry split;
  CDB_RETURN_IF_ERROR(
      InsertRec(root_, 0, rect, id, height_ - 1, &mbr, &split));
  if (split.split) {
    Result<PageId> new_root = pager_->Allocate();
    if (!new_root.ok()) return new_root.status();
    std::vector<Entry> root_entries{{mbr, root_}, {split.rect, split.page}};
    CDB_RETURN_IF_ERROR(
        WriteNode(pager_, new_root.value(), /*leaf=*/false, root_entries));
    root_ = new_root.value();
    ++height_;
  }
  ++count_;
  return Status::OK();
}

// --- Delete ------------------------------------------------------------------

namespace {

// Gathers every (rect, id) leaf entry beneath `page` and frees the subtree.
Status GatherAndFree(Pager* pager, PageId page,
                     std::vector<std::pair<Rect, TupleId>>* orphans) {
  bool leaf;
  std::vector<Entry> entries;
  CDB_RETURN_IF_ERROR(ReadNode(pager, page, &leaf, &entries, nullptr));
  if (leaf) {
    for (const Entry& e : entries) orphans->push_back({e.rect, e.id});
  } else {
    for (const Entry& e : entries) {
      CDB_RETURN_IF_ERROR(GatherAndFree(pager, e.id, orphans));
    }
  }
  return pager->Free(page);
}

}  // namespace

Status GuttmanRTree::DeleteRec(PageId page, uint32_t level, const Rect& rect,
                               TupleId id, bool* removed, bool* underflow,
                               Rect* mbr,
                               std::vector<std::pair<Rect, TupleId>>* orphans) {
  bool leaf;
  std::vector<Entry> entries;
  CDB_RETURN_IF_ERROR(ReadNode(pager_, page, &leaf, &entries, nullptr));
  const size_t min_fill = MinFill(NodeCapacity(pager_->page_size()));
  *removed = false;
  *underflow = false;

  if (leaf) {
    for (size_t i = 0; i < entries.size(); ++i) {
      if (entries[i].id == id && entries[i].rect.Intersects(rect)) {
        entries.erase(entries.begin() + static_cast<long>(i));
        *removed = true;
        break;
      }
    }
    if (!*removed) return Status::OK();
    CDB_RETURN_IF_ERROR(WriteNode(pager_, page, true, entries));
    *mbr = MbrOf(entries);
    *underflow = entries.size() < min_fill;
    return Status::OK();
  }

  for (size_t i = 0; i < entries.size() && !*removed; ++i) {
    if (!entries[i].rect.Intersects(rect)) continue;
    bool child_removed = false, child_underflow = false;
    Rect child_mbr;
    CDB_RETURN_IF_ERROR(DeleteRec(entries[i].id, level + 1, rect, id,
                                  &child_removed, &child_underflow,
                                  &child_mbr, orphans));
    if (!child_removed) continue;
    *removed = true;
    if (child_underflow) {
      // CondenseTree: orphan the underfull child's entries and drop it.
      CDB_RETURN_IF_ERROR(GatherAndFree(pager_, entries[i].id, orphans));
      entries.erase(entries.begin() + static_cast<long>(i));
    } else {
      entries[i].rect = child_mbr;
    }
    CDB_RETURN_IF_ERROR(WriteNode(pager_, page, false, entries));
    *mbr = MbrOf(entries);
    *underflow = entries.size() < min_fill;
  }
  return Status::OK();
}

Status GuttmanRTree::Delete(const Rect& rect, TupleId id) {
  bool removed = false, underflow = false;
  Rect mbr;
  std::vector<std::pair<Rect, TupleId>> orphans;
  CDB_RETURN_IF_ERROR(
      DeleteRec(root_, 0, rect, id, &removed, &underflow, &mbr, &orphans));
  if (!removed) return Status::NotFound("entry not in R-tree");
  --count_;

  // Shrink a root that lost all but one child.
  while (true) {
    bool leaf;
    std::vector<Entry> entries;
    CDB_RETURN_IF_ERROR(ReadNode(pager_, root_, &leaf, &entries, nullptr));
    if (leaf || entries.size() != 1) break;
    PageId old_root = root_;
    root_ = entries[0].id;
    CDB_RETURN_IF_ERROR(pager_->Free(old_root));
    --height_;
  }

  // Reinsert orphaned leaf entries (count_ is unaffected: they were never
  // logically deleted).
  for (const auto& [orect, oid] : orphans) {
    CDB_RETURN_IF_ERROR(Insert(orect, oid));
    --count_;  // Insert() bumped it.
  }
  return Status::OK();
}

// --- Invariants -----------------------------------------------------------------

Status GuttmanRTree::CheckRec(PageId page, uint32_t depth,
                              const Rect& region) const {
  bool leaf;
  std::vector<Entry> entries;
  CDB_RETURN_IF_ERROR(ReadNode(pager_, page, &leaf, &entries, nullptr));
  Rect grown(region.xlo - 1e-9, region.ylo - 1e-9, region.xhi + 1e-9,
             region.yhi + 1e-9);
  for (const Entry& e : entries) {
    if (!grown.Contains(e.rect)) {
      return Status::Corruption("entry escapes its node MBR");
    }
  }
  if (leaf) {
    if (depth + 1 != height_) return Status::Corruption("leaf at wrong depth");
    return Status::OK();
  }
  if (depth + 1 >= height_) return Status::Corruption("internal too deep");
  for (const Entry& e : entries) {
    CDB_RETURN_IF_ERROR(CheckRec(e.id, depth + 1, e.rect));
  }
  return Status::OK();
}

Status GuttmanRTree::CheckInvariants() const {
  return CheckRec(root_, 0, Rect(-1e300, -1e300, 1e300, 1e300));
}

}  // namespace cdb
