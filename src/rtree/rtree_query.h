// ALL/EXIST half-plane selections over an R+-tree, the baseline execution
// of Section 5. EXIST filters leaf entries by rect/half-plane intersection;
// ALL has no direct R+-tree form for non-rectangular queries (Section 1),
// so it runs as an EXIST scan whose candidates are refined by the exact
// containment predicate — the approximation the paper highlights as the
// R+-tree's weakness.

#ifndef CDB_RTREE_RTREE_QUERY_H_
#define CDB_RTREE_RTREE_QUERY_H_

#include "constraint/naive_eval.h"
#include "constraint/relation.h"
#include "dualindex/dual_index.h"  // QueryStats
#include "obs/trace.h"
#include "rtree/guttman_rtree.h"
#include "rtree/quadtree.h"
#include "rtree/rplus_tree.h"

namespace cdb {

/// Executes the selection, refining candidates against the relation's
/// stored constraints. Results sorted by tuple id. Populates the same
/// QueryStats the dual index reports, for apples-to-apples benchmarks.
/// When `profile` is non-null it receives the per-phase span breakdown.
/// `ctx` (optional) is checked at every page-fetch boundary with the same
/// early-exit contract as DualIndex::Select (no pinned pages, balanced
/// stats, unprocessed candidates booked as `filter.abandoned`).
Result<std::vector<TupleId>> RTreeSelect(RPlusTree* tree, Relation* relation,
                                         SelectionType type,
                                         const HalfPlaneQuery& q,
                                         QueryStats* stats = nullptr,
                                         obs::ExplainProfile* profile = nullptr,
                                         const QueryContext* ctx = nullptr);

/// Same execution over the classic Guttman R-tree baseline.
Result<std::vector<TupleId>> RTreeSelect(GuttmanRTree* tree,
                                         Relation* relation,
                                         SelectionType type,
                                         const HalfPlaneQuery& q,
                                         QueryStats* stats = nullptr,
                                         obs::ExplainProfile* profile = nullptr,
                                         const QueryContext* ctx = nullptr);

/// Same execution over the MX-CIF quadtree baseline.
Result<std::vector<TupleId>> RTreeSelect(MxCifQuadtree* tree,
                                         Relation* relation,
                                         SelectionType type,
                                         const HalfPlaneQuery& q,
                                         QueryStats* stats = nullptr,
                                         obs::ExplainProfile* profile = nullptr,
                                         const QueryContext* ctx = nullptr);

}  // namespace cdb

#endif  // CDB_RTREE_RTREE_QUERY_H_
