// MX-CIF quadtree — the third rectangle-family structure the paper's
// Section 1 cites ("derived from R-tree, R+-tree, quadtree or their
// variants"). Kedem's MX-CIF variant stores each rectangle at the smallest
// quadtree cell that fully contains it, so objects are never duplicated and
// cells subdivide on demand. Queries descend every cell intersecting the
// search region and test the rectangles stored along the way.
//
// Disk layout: one page per allocated cell (header + rectangle entries,
// with overflow chains for crowded cells — rectangles straddling a cell's
// center lines cannot be pushed down, so a cell's list is unbounded).
// Bounded objects only, like the rest of the rectangle family.

#ifndef CDB_RTREE_QUADTREE_H_
#define CDB_RTREE_QUADTREE_H_

#include <memory>
#include <vector>

#include "common/query_context.h"
#include "common/result.h"
#include "constraint/generalized_tuple.h"
#include "geometry/rect.h"
#include "rtree/rplus_tree.h"  // RTreeStats
#include "storage/pager.h"

namespace cdb {

/// See file comment. Does not own the pager.
class MxCifQuadtree {
 public:
  /// Creates an empty tree over the world square `world` (objects must fit
  /// inside it). `max_depth` bounds subdivision.
  static Status Create(Pager* pager, const Rect& world, uint32_t max_depth,
                       std::unique_ptr<MxCifQuadtree>* out);

  Status Insert(const Rect& rect, TupleId id);

  /// Removes the (rect, id) entry; NotFound when absent.
  Status Delete(const Rect& rect, TupleId id);

  Result<std::vector<TupleId>> SearchHalfPlane(const HalfPlaneQuery& q,
                                               RTreeStats* stats = nullptr,
                                               const QueryContext* ctx =
                                                   nullptr);
  Result<std::vector<TupleId>> SearchRect(const Rect& window,
                                          RTreeStats* stats = nullptr);

  uint64_t entry_count() const { return count_; }
  uint64_t live_page_count() const { return pager_->live_page_count(); }

  /// The backing pager (for I/O accounting by callers).
  Pager* pager() const { return pager_; }

 private:
  MxCifQuadtree(Pager* pager, const Rect& world, uint32_t max_depth)
      : pager_(pager), world_(world), max_depth_(max_depth) {}

  // Cell helpers work on the geometric decomposition; cells are allocated
  // lazily on first insert.
  Status InsertRec(PageId cell, const Rect& cell_rect, uint32_t depth,
                   const Rect& rect, TupleId id);
  template <typename Pred>
  Status SearchRec(PageId cell, const Rect& cell_rect, const Pred& pred,
                   std::vector<TupleId>* out, RTreeStats* stats,
                   const QueryContext* ctx) const;
  Status DeleteRec(PageId cell, const Rect& cell_rect, const Rect& rect,
                   TupleId id, bool* removed);

  Pager* pager_;
  Rect world_;
  uint32_t max_depth_;
  PageId root_ = kInvalidPageId;
  uint64_t count_ = 0;
};

}  // namespace cdb

#endif  // CDB_RTREE_QUADTREE_H_
