// R+-tree baseline (Sellis, Roussopoulos, Faloutsos, VLDB 1987) — the
// structure the paper compares against in Section 5.
//
// The R+-tree partitions space into non-overlapping regions; an object
// whose bounding rectangle crosses a region boundary is *clipped* and
// referenced from every overlapping leaf. Point/region search therefore
// never follows overlapping siblings (unlike the R-tree) but may report the
// same object several times — the duplication cost the paper contrasts with
// technique T2.
//
// Construction follows the original paper's Pack/Partition idea: a
// sweep-based sequential cut (x or y, whichever crosses fewer rectangles)
// carves the entry set into disjoint leaf regions, splitting crossing
// rectangles; upper levels group the disjoint child regions
// center-sorted (STR-style; internal MBRs may then overlap slightly, which
// affects only I/O, never correctness — searches visit every intersecting
// child). Dynamic inserts clip the incoming rectangle against the existing
// leaf regions, extending the best-fitting leaf for uncovered parts;
// overflows split leaves with the same sweep cut.
//
// The R+-tree can only store *bounded* objects — the limitation that
// motivates the dual representation (Figure 1 of the paper).

#ifndef CDB_RTREE_RPLUS_TREE_H_
#define CDB_RTREE_RPLUS_TREE_H_

#include <memory>
#include <vector>

#include "common/query_context.h"
#include "common/result.h"
#include "common/status.h"
#include "constraint/generalized_tuple.h"
#include "geometry/rect.h"
#include "storage/pager.h"

namespace cdb {

/// Search-time statistics.
struct RTreeStats {
  uint64_t page_fetches = 0;
  uint64_t entries_scanned = 0;
  uint64_t duplicates = 0;  // Clipped copies of already-reported objects.
};

/// See file comment. Does not own the pager.
class RPlusTree {
 public:
  /// Creates an empty tree.
  static Status Create(Pager* pager, std::unique_ptr<RPlusTree>* out);

  /// Builds a packed tree from (bounding rect, tuple id) pairs.
  static Status BulkBuild(Pager* pager,
                          std::vector<std::pair<Rect, TupleId>> entries,
                          std::unique_ptr<RPlusTree>* out);

  /// Inserts one object. O(log n) expected page accesses.
  Status Insert(const Rect& rect, TupleId id);

  /// Removes every clipped fragment of object `id` overlapping `rect` (pass
  /// the object's full bounding rect). NotFound when nothing was removed.
  Status Delete(const Rect& rect, TupleId id);

  /// Ids of objects whose rectangle intersects the half-plane, deduplicated
  /// and sorted. `ctx` (optional) is checked before every node read; a
  /// fired deadline/cancellation aborts the search with no pinned pages.
  Result<std::vector<TupleId>> SearchHalfPlane(const HalfPlaneQuery& q,
                                               RTreeStats* stats = nullptr,
                                               const QueryContext* ctx =
                                                   nullptr);

  /// Ids of objects whose rectangle intersects `window`.
  Result<std::vector<TupleId>> SearchRect(const Rect& window,
                                          RTreeStats* stats = nullptr);

  uint64_t entry_count() const { return count_; }
  uint32_t height() const { return height_; }
  uint64_t live_page_count() const { return pager_->live_page_count(); }

  /// The backing pager (for I/O accounting by callers).
  Pager* pager() const { return pager_; }

  /// Structural checks: entry rects lie within their node's region, leaf
  /// regions are mutually disjoint (up to epsilon at shared boundaries),
  /// all leaves at the same depth.
  Status CheckInvariants() const;

 private:
  struct Entry {
    Rect rect;
    uint32_t id;  // Tuple id at leaves; child page id internally.
  };

  explicit RPlusTree(Pager* pager) : pager_(pager) {}

  Status WriteNode(PageId page, bool leaf, const std::vector<Entry>& entries);
  Status ReadNode(PageId page, bool* leaf, std::vector<Entry>* entries,
                  RTreeStats* stats) const;

  template <typename Pred>
  Status SearchRec(PageId page, const Pred& pred,
                   std::vector<TupleId>* out, RTreeStats* stats,
                   const QueryContext* ctx) const;

  Status InsertRec(PageId page, uint32_t depth, const Rect& rect, TupleId id,
                   std::vector<Entry>* split_out);
  Status DeleteRec(PageId page, const Rect& rect, TupleId id,
                   uint64_t* removed);

  Status CheckRec(PageId page, uint32_t depth, const Rect& region,
                  std::vector<Rect>* leaf_regions) const;

  Pager* pager_;
  PageId root_ = kInvalidPageId;
  uint32_t height_ = 1;
  uint64_t count_ = 0;  // Distinct object insertions (not clipped copies).
};

}  // namespace cdb

#endif  // CDB_RTREE_RPLUS_TREE_H_
