// Classic R-tree (Guttman, SIGMOD 1984) — the other member of the
// rectangle-index family the paper's related work discusses (and the
// R+-tree's point of departure).
//
// Unlike the R+-tree, node regions may overlap and each object is stored
// exactly once (no clipping, no duplicates); searches pay by descending
// every overlapping subtree instead. Insertion uses ChooseLeaf by least
// area enlargement and Guttman's quadratic split; deletion condenses
// underfull nodes by reinserting their entries. Bulk construction packs
// leaves Sort-Tile-Recursive.
//
// Used as an additional baseline in bench/rtree_family.

#ifndef CDB_RTREE_GUTTMAN_RTREE_H_
#define CDB_RTREE_GUTTMAN_RTREE_H_

#include <memory>
#include <vector>

#include "common/query_context.h"
#include "common/result.h"
#include "constraint/generalized_tuple.h"
#include "geometry/rect.h"
#include "rtree/rplus_tree.h"  // RTreeStats
#include "storage/pager.h"

namespace cdb {

/// See file comment. Does not own the pager.
class GuttmanRTree {
 public:
  static Status Create(Pager* pager, std::unique_ptr<GuttmanRTree>* out);

  /// STR-packed construction.
  static Status BulkBuild(Pager* pager,
                          std::vector<std::pair<Rect, TupleId>> entries,
                          std::unique_ptr<GuttmanRTree>* out);

  Status Insert(const Rect& rect, TupleId id);

  /// Removes the (rect, id) entry; NotFound when absent.
  Status Delete(const Rect& rect, TupleId id);

  Result<std::vector<TupleId>> SearchHalfPlane(const HalfPlaneQuery& q,
                                               RTreeStats* stats = nullptr,
                                               const QueryContext* ctx =
                                                   nullptr);
  Result<std::vector<TupleId>> SearchRect(const Rect& window,
                                          RTreeStats* stats = nullptr);

  uint64_t entry_count() const { return count_; }
  uint32_t height() const { return height_; }
  uint64_t live_page_count() const { return pager_->live_page_count(); }

  /// The backing pager (for I/O accounting by callers).
  Pager* pager() const { return pager_; }

  /// Depth uniformity, MBR containment, minimum fill.
  Status CheckInvariants() const;

 private:
  explicit GuttmanRTree(Pager* pager) : pager_(pager) {}

  template <typename Pred>
  Status SearchRec(PageId page, const Pred& pred, std::vector<TupleId>* out,
                   RTreeStats* stats, const QueryContext* ctx) const;

  // Returns (via *split) a new sibling entry when `page` was split.
  struct SplitEntry {
    bool split = false;
    Rect rect;
    PageId page = kInvalidPageId;
  };
  Status InsertRec(PageId page, uint32_t level, const Rect& rect, uint32_t id,
                   uint32_t target_level, Rect* mbr, SplitEntry* split);

  Status DeleteRec(PageId page, uint32_t level, const Rect& rect, TupleId id,
                   bool* removed, bool* underflow, Rect* mbr,
                   std::vector<std::pair<Rect, TupleId>>* orphans);

  Status CheckRec(PageId page, uint32_t depth, const Rect& region) const;

  Pager* pager_;
  PageId root_ = kInvalidPageId;
  uint32_t height_ = 1;
  uint64_t count_ = 0;
};

}  // namespace cdb

#endif  // CDB_RTREE_GUTTMAN_RTREE_H_
