// Paper-faithful workload generation (Section 5).
//
// Each generated tuple is a satisfiable conjunction of 3-6 linear
// constraints whose boundary-line angles are drawn from
// [0, pi/2) ∪ (pi/2, pi) and whose weight centre is uniform in the working
// window [-50, 50]^2. Two object-size classes mirror the paper's
// experiments: "small" bounding rectangles covering 1-5 % of the global
// rectangle R, and "medium" ones up to 50 %. A separate generator produces
// unbounded tuples (half-plane/wedge extensions) for the infinite-object
// scenarios only the dual index supports.

#ifndef CDB_WORKLOAD_GENERATOR_H_
#define CDB_WORKLOAD_GENERATOR_H_

#include "common/rng.h"
#include "constraint/generalized_tuple.h"

namespace cdb {

/// Object-size classes of Section 5.
enum class ObjectSize { kSmall, kMedium };

struct WorkloadOptions {
  int min_constraints = 3;
  int max_constraints = 6;
  /// Half-width of the working window; centres are uniform in
  /// [-window, window]^2.
  double window = 50.0;
  ObjectSize size = ObjectSize::kSmall;
};

/// Generates one satisfiable *bounded* tuple. The bounding rectangle's area
/// lands in the size class band (1-5 % of the window rectangle for kSmall,
/// 5-50 % for kMedium) up to generator retries.
GeneralizedTuple RandomBoundedTuple(Rng* rng, const WorkloadOptions& options);

/// Generates one satisfiable *unbounded* tuple: a wedge or half-plane-like
/// conjunction anchored near a random centre. Used by infinite-object tests
/// and examples (the R+-tree cannot store these).
GeneralizedTuple RandomUnboundedTuple(Rng* rng,
                                      const WorkloadOptions& options);

/// Random d-dimensional bounded tuple (axis box cut by extra hyperplanes)
/// for the Section 4.4 experiments.
GeneralizedTupleD RandomBoundedTupleD(Rng* rng, size_t dim, double window);

/// A random line angle in [0, pi/2) ∪ (pi/2, pi), bounded away from the
/// vertical so slopes stay numerically tame (the paper's constraint-angle
/// distribution).
double RandomLineAngle(Rng* rng);

}  // namespace cdb

#endif  // CDB_WORKLOAD_GENERATOR_H_
