// Selectivity-calibrated query generation (Section 5: the paper evaluates
// queries with selectivities in 5-60 % and reports the 10-15 % band).

#ifndef CDB_WORKLOAD_QUERY_GEN_H_
#define CDB_WORKLOAD_QUERY_GEN_H_

#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "constraint/naive_eval.h"
#include "constraint/relation.h"

namespace cdb {

/// A generated query together with its realized selectivity.
struct CalibratedQuery {
  HalfPlaneQuery query;
  SelectionType type = SelectionType::kExist;
  double selectivity = 0.0;  // |answer| / |relation|.
};

/// Generates a query of the given type whose selectivity lands in
/// [sel_lo, sel_hi]. The slope is tan(angle) for an angle uniform in
/// [-angle_half_range, angle_half_range] (the paper does not specify the
/// query-slope distribution; the default mirrors its constraint-angle
/// range, and benchmarks use a moderate band matched to the slope set S).
/// The intercept is placed at the matching quantile of the relation's
/// TOP/BOT values at that slope, making the calibration exact by
/// construction, up to ties.
Result<CalibratedQuery> GenerateQuery(const Relation& relation,
                                      SelectionType type, double sel_lo,
                                      double sel_hi, Rng* rng,
                                      double angle_half_range = 1.4708);

/// Rng for worker `worker_id` of a batch seeded with `batch_seed`
/// (common/rng.h SplitSeed underneath). Each worker generating its own
/// stream with WorkerRng(seed, w) produces the same queries regardless of
/// thread count or scheduling — the property the parallel-batch benchmarks
/// and stress tests rely on for serial-vs-parallel comparisons.
inline Rng WorkerRng(uint64_t batch_seed, uint32_t worker_id) {
  return Rng(SplitSeed(batch_seed, worker_id));
}

}  // namespace cdb

#endif  // CDB_WORKLOAD_QUERY_GEN_H_
