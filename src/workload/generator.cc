#include "workload/generator.h"

#include <cmath>

#include "geometry/polyhedron2d.h"

namespace cdb {

namespace {

// Keep line angles at least this far from the vertical (pi/2) so slopes
// stay below ~tan(1.47) ≈ 10; the paper excludes pi/2 exactly, we exclude a
// small numerical neighbourhood.
constexpr double kVerticalGuard = 0.1;

// Builds a tuple whose constraints are tangent to a disc of radius ~r at
// the centre, with boundary-line angles from the paper's distribution and
// the half-plane side always containing the centre.
GeneralizedTuple TangentTuple(Rng* rng, const Vec2& centre, double r, int m) {
  GeneralizedTuple t;
  for (int i = 0; i < m; ++i) {
    double angle = RandomLineAngle(rng);
    // Line direction (cos, sin); the normal is its perpendicular, flipped
    // randomly so constraints close from both sides.
    double nx = -std::sin(angle), ny = std::cos(angle);
    if (rng->Chance(0.5)) {
      nx = -nx;
      ny = -ny;
    }
    double dist = rng->Uniform(0.55, 1.0) * r;
    // n·p <= n·centre + dist  (half-plane containing the centre).
    t.Add(nx, ny, -(nx * centre.x + ny * centre.y + dist), Cmp::kLE);
  }
  return t;
}

}  // namespace

double RandomLineAngle(Rng* rng) {
  double lo, hi;
  if (rng->Chance(0.5)) {
    lo = 0.0;
    hi = M_PI / 2 - kVerticalGuard;
  } else {
    lo = M_PI / 2 + kVerticalGuard;
    hi = M_PI;
  }
  return rng->Uniform(lo, hi);
}

GeneralizedTuple RandomBoundedTuple(Rng* rng, const WorkloadOptions& options) {
  const double window_area = 4.0 * options.window * options.window;
  // Size classes as side fractions of the working rectangle: small objects
  // span 1-5 % of R's side, medium 5-25 %. (The paper phrases the classes
  // as area fractions "1-5 %" / "up to half"; taken literally, 12000 such
  // objects cover every point of R hundreds of times over, a regime where
  // a clipping R+-tree cannot produce disjoint leaf regions at all — see
  // DESIGN.md. The side-fraction reading keeps the baseline viable while
  // preserving the small-vs-medium contrast the figures rely on.)
  double frac_lo, frac_hi;
  if (options.size == ObjectSize::kSmall) {
    frac_lo = 0.01 * 0.01;
    frac_hi = 0.05 * 0.05;
  } else {
    frac_lo = 0.05 * 0.05;
    frac_hi = 0.25 * 0.25;
  }

  for (int attempt = 0; attempt < 1000; ++attempt) {
    double frac = rng->Uniform(frac_lo, frac_hi);
    double target_area = frac * window_area;
    // The bounding box of a disc-anchored polygon is roughly (2r)^2..(3r)^2;
    // start from the disc matching the target and filter on the real box.
    double r = std::sqrt(target_area) / 2.4;
    Vec2 centre{rng->Uniform(-options.window, options.window),
                rng->Uniform(-options.window, options.window)};
    int m = static_cast<int>(
        rng->UniformInt(options.min_constraints, options.max_constraints));
    GeneralizedTuple t = TangentTuple(rng, centre, r, m);
    Rect box;
    if (!t.GetBoundingRect(&box)) continue;  // Unbounded; try again.
    double a = box.Area();
    if (a < frac_lo * window_area * 0.8 || a > frac_hi * window_area * 1.2) {
      continue;
    }
    return t;
  }
  // Fallback: a plain box of in-band area (practically unreachable; the
  // tangent construction converges quickly).
  double frac = (frac_lo + frac_hi) / 2;
  double half = std::sqrt(frac * window_area) / 2;
  Vec2 c{rng->Uniform(-options.window, options.window),
         rng->Uniform(-options.window, options.window)};
  GeneralizedTuple t;
  t.Add(1, 0, -(c.x + half), Cmp::kLE);
  t.Add(1, 0, -(c.x - half), Cmp::kGE);
  t.Add(0, 1, -(c.y + half), Cmp::kLE);
  t.Add(0, 1, -(c.y - half), Cmp::kGE);
  return t;
}

GeneralizedTuple RandomUnboundedTuple(Rng* rng,
                                      const WorkloadOptions& options) {
  for (int attempt = 0; attempt < 1000; ++attempt) {
    Vec2 centre{rng->Uniform(-options.window, options.window),
                rng->Uniform(-options.window, options.window)};
    // 1-3 constraints whose normals span less than a half-circle leave the
    // region unbounded (a half-plane, strip corner, or wedge).
    int m = static_cast<int>(rng->UniformInt(1, 3));
    double base = RandomLineAngle(rng);
    GeneralizedTuple t;
    for (int i = 0; i < m; ++i) {
      double angle = base + rng->Uniform(-0.6, 0.6);
      double nx = -std::sin(angle), ny = std::cos(angle);
      double dist = rng->Uniform(1.0, 8.0);
      t.Add(nx, ny, -(nx * centre.x + ny * centre.y + dist), Cmp::kLE);
    }
    if (!t.IsSatisfiable()) continue;
    Rect box;
    if (t.GetBoundingRect(&box)) continue;  // Accidentally bounded.
    return t;
  }
  GeneralizedTuple t;
  t.Add(0, 1, -3, Cmp::kGE);  // y >= 3 — the paper's flavour of infinity.
  return t;
}

GeneralizedTupleD RandomBoundedTupleD(Rng* rng, size_t dim, double window) {
  std::vector<ConstraintD> cons;
  std::vector<double> centre(dim);
  for (size_t i = 0; i < dim; ++i) centre[i] = rng->Uniform(-window, window);
  double half = rng->Uniform(0.05, 0.15) * window;
  for (size_t i = 0; i < dim; ++i) {
    std::vector<double> e(dim, 0.0);
    e[i] = 1.0;
    cons.emplace_back(e, -(centre[i] + half), Cmp::kLE);
    cons.emplace_back(e, -(centre[i] - half), Cmp::kGE);
  }
  // A couple of diagonal cuts through the box that keep the centre inside.
  int extra = static_cast<int>(rng->UniformInt(0, 2));
  for (int e = 0; e < extra; ++e) {
    std::vector<double> n(dim);
    double dot = 0;
    for (size_t i = 0; i < dim; ++i) {
      n[i] = rng->Uniform(-1, 1);
      dot += n[i] * centre[i];
    }
    cons.emplace_back(n, -(dot + rng->Uniform(0.2, 1.0) * half), Cmp::kLE);
  }
  return GeneralizedTupleD(dim, std::move(cons));
}

}  // namespace cdb
