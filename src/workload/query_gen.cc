#include "workload/query_gen.h"

#include <algorithm>
#include <cmath>

#include "workload/generator.h"

namespace cdb {

namespace {

// Nudge the intercept off the exact stored value so queries never sit on a
// tuple's surface boundary (keeps index/ground-truth comparisons free of
// epsilon ties).
double Nudge(double v) { return 1e-6 * std::max(1.0, std::fabs(v)); }

}  // namespace

Result<CalibratedQuery> GenerateQuery(const Relation& relation,
                                      SelectionType type, double sel_lo,
                                      double sel_hi, Rng* rng,
                                      double angle_half_range) {
  const size_t n = relation.size();
  if (n == 0) return Status::InvalidArgument("empty relation");
  if (!(sel_lo >= 0 && sel_lo <= sel_hi && sel_hi <= 1)) {
    return Status::InvalidArgument("bad selectivity band");
  }

  for (int attempt = 0; attempt < 200; ++attempt) {
    double slope =
        std::tan(rng->Uniform(-angle_half_range, angle_half_range));
    Cmp cmp = rng->Chance(0.5) ? Cmp::kGE : Cmp::kLE;
    double target = rng->Uniform(sel_lo, sel_hi);

    // Per-tuple threshold surface for this query family (Prop. 2.2):
    //   EXIST(>=): TOP, qualifies iff b <= v.   ALL(>=): BOT, b <= v.
    //   EXIST(<=): BOT, qualifies iff b >= v.   ALL(<=): TOP, b >= v.
    const bool use_top = (type == SelectionType::kExist) == (cmp == Cmp::kGE);
    const bool qualify_above = cmp == Cmp::kGE;  // b <= v.

    std::vector<double> values;
    values.reserve(n);
    Status st = relation.ForEach(
        [&](TupleId, const GeneralizedTuple& t) -> Status {
          double v = use_top ? t.Top(slope) : t.Bot(slope);
          if (!std::isnan(v)) values.push_back(v);
          return Status::OK();
        });
    if (!st.ok()) return st;
    if (values.empty()) continue;
    std::sort(values.begin(), values.end());

    // Pick the intercept at the quantile matching the target selectivity.
    size_t want = static_cast<size_t>(
        std::lround(target * static_cast<double>(values.size())));
    want = std::max<size_t>(1, std::min(want, values.size()));
    double b;
    if (qualify_above) {
      // Want the top `want` values to qualify.
      double anchor = values[values.size() - want];
      if (std::isinf(anchor)) continue;
      b = anchor - Nudge(anchor);
    } else {
      double anchor = values[want - 1];
      if (std::isinf(anchor)) continue;
      b = anchor + Nudge(anchor);
    }

    // Realized selectivity from the sorted values.
    size_t hits;
    if (qualify_above) {
      hits = values.end() -
             std::lower_bound(values.begin(), values.end(), b);
    } else {
      hits = std::upper_bound(values.begin(), values.end(), b) -
             values.begin();
    }
    double realized =
        static_cast<double>(hits) / static_cast<double>(values.size());
    if (realized < sel_lo - 0.02 || realized > sel_hi + 0.02) continue;

    CalibratedQuery out;
    out.query = HalfPlaneQuery(slope, b, cmp);
    out.type = type;
    out.selectivity = realized;
    return out;
  }
  return Status::Internal("failed to calibrate a query in the band");
}

}  // namespace cdb
