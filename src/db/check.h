// Offline integrity checker: validates a database (or a bare pager file)
// bottom-up — page checksums, free-list bookkeeping, tree structural
// invariants, relation readability — and reports every violation found
// instead of stopping at the first.
//
// The crash-recovery tests run CheckDatabase after every simulated crash
// point; the cdb_check tool exposes the same checks on the command line.

#ifndef CDB_DB_CHECK_H_
#define CDB_DB_CHECK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "btree/bplus_tree.h"
#include "db/database.h"
#include "rtree/rplus_tree.h"
#include "storage/pager.h"

namespace cdb {

/// Accumulated result of an integrity check. `violations` is empty iff the
/// checked structures are sound; environmental failures (I/O errors and the
/// like) are returned as a non-OK Status by the check functions instead.
struct CheckReport {
  uint64_t pages_checked = 0;   // Live pages whose checksums were verified.
  uint64_t free_pages = 0;      // Pages found on free lists.
  uint64_t trees_checked = 0;   // Trees whose invariants were verified.
  std::vector<std::string> violations;

  bool ok() const { return violations.empty(); }

  void AddViolation(std::string what) {
    violations.push_back(std::move(what));
  }

  /// One-line human-readable summary ("ok: 12 pages, 8 trees ..." or
  /// "FAILED: 2 violations ...").
  std::string Summary() const;
};

/// Verifies every live page's checksum with a cold read and cross-checks
/// the page accounting (live + free + meta == file pages). The free list
/// itself was validated when `pager` was opened; this adds the payload
/// verification for live pages. Corruption is recorded in `report`;
/// non-corruption I/O failures abort with a non-OK Status.
Status CheckPagerIntegrity(Pager* pager, CheckReport* report);

/// Runs tree.CheckInvariants(), recording a violation on corruption.
Status CheckBPlusTree(const BPlusTree& tree, CheckReport* report);
Status CheckRPlusTree(const RPlusTree& tree, CheckReport* report);

/// Full-database check: pager integrity of both files, dual-index tree
/// invariants, and a readability scan of every live tuple.
Status CheckDatabase(ConstraintDatabase* db, CheckReport* report);

}  // namespace cdb

#endif  // CDB_DB_CHECK_H_
