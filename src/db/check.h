// Offline integrity checker: validates a database (or a bare pager file)
// bottom-up — page checksums, free-list bookkeeping, tree structural
// invariants, relation readability — and reports every violation found
// instead of stopping at the first.
//
// The crash-recovery tests run CheckDatabase after every simulated crash
// point; the cdb_check tool exposes the same checks on the command line.

#ifndef CDB_DB_CHECK_H_
#define CDB_DB_CHECK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "btree/bplus_tree.h"
#include "db/database.h"
#include "obs/json.h"
#include "rtree/rplus_tree.h"
#include "storage/pager.h"

namespace cdb {

/// Accumulated result of an integrity check. `violations` is empty iff the
/// checked structures are sound; environmental failures (I/O errors and the
/// like) are returned as a non-OK Status by the check functions instead.
struct CheckReport {
  /// Per-phase verdict (ISSUE 5): CheckDatabase appends one entry per
  /// check phase it ran ("pager.relation", "pager.index", "index.trees",
  /// "relation.tuples", and "relation.bbox_sidecar" when the relation
  /// carries a bounding-box cache), so machine consumers (cdb_check
  /// --json) see which phase failed, not just the flat violation list.
  struct Entry {
    std::string name;
    bool ok = true;
    uint64_t violations = 0;  // Violations this phase contributed.
  };

  uint64_t pages_checked = 0;   // Live pages whose checksums were verified.
  uint64_t free_pages = 0;      // Pages found on free lists.
  uint64_t trees_checked = 0;   // Trees whose invariants were verified.
  std::vector<Entry> checks;
  std::vector<std::string> violations;

  bool ok() const { return violations.empty(); }

  void AddViolation(std::string what) {
    violations.push_back(std::move(what));
  }

  /// Records phase `name` as covering every violation added since
  /// `violations_before` (callers snapshot violations.size() before the
  /// phase runs).
  void AddCheck(std::string name, size_t violations_before);

  /// One-line human-readable summary ("ok: 12 pages, 8 trees ..." or
  /// "FAILED: 2 violations ...").
  std::string Summary() const;
};

/// Verifies every live page's checksum with a cold read and cross-checks
/// the page accounting (live + free + meta == file pages). The free list
/// itself was validated when `pager` was opened; this adds the payload
/// verification for live pages. Corruption is recorded in `report`;
/// non-corruption I/O failures abort with a non-OK Status.
Status CheckPagerIntegrity(Pager* pager, CheckReport* report);

/// Runs tree.CheckInvariants(), recording a violation on corruption.
Status CheckBPlusTree(const BPlusTree& tree, CheckReport* report);
Status CheckRPlusTree(const RPlusTree& tree, CheckReport* report);

/// Full-database check: pager integrity of both files, dual-index tree
/// invariants, and a readability scan of every live tuple. Each phase
/// appends a CheckReport::Entry (see there).
Status CheckDatabase(ConstraintDatabase* db, CheckReport* report);

/// Serializes `report` as one JSON object (schema "cdb-check/v1"):
/// overall verdict, the counters, the per-phase `checks` array, and the
/// flat violation list. Machine counterpart of Summary(); consumed by CI
/// via `cdb_check --json`.
void WriteCheckReportJson(const CheckReport& report, obs::JsonWriter* w);

}  // namespace cdb

#endif  // CDB_DB_CHECK_H_
