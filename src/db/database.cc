#include "db/database.h"

#include <cctype>
#include <cstring>

#include "constraint/parser.h"
#include "storage/file.h"

namespace cdb {

namespace {

constexpr uint64_t kCatalogMagic = 0xCDBCA7A1060000AAull;
constexpr uint8_t kFlagTight = 1;
constexpr uint8_t kFlagVertical = 2;
constexpr uint8_t kFlagBBox = 4;  // Relation carries a bounding-box sidecar.

Status OpenPager(const std::string& path, const DatabaseOptions& options,
                 std::unique_ptr<Pager>* out, bool* existed) {
  PagerOptions popts;
  popts.page_size = options.page_size;
  popts.cache_frames = options.cache_frames;
  std::unique_ptr<BlockFile> file;
  std::unique_ptr<BlockFile> journal;
  if (options.in_memory) {
    // No crash to survive: skip the journal, keep checksums (cheap, and
    // they catch in-process scribbles).
    file = std::make_unique<MemFile>(options.page_size);
    *existed = false;
  } else {
    std::unique_ptr<PosixFile> pf;
    CDB_RETURN_IF_ERROR(
        PosixFile::Open(path, options.page_size, /*truncate=*/false, &pf));
    *existed = pf->BlockCount() > 0;
    file = std::move(pf);
    // The rollback journal sits beside the data file; a leftover journal
    // from a crashed process is replayed by Pager::Open.
    std::unique_ptr<PosixFile> jf;
    CDB_RETURN_IF_ERROR(PosixFile::Open(
        path + "-journal", Pager::JournalBlockSize(options.page_size),
        /*truncate=*/false, &jf));
    journal = std::move(jf);
  }
  return Pager::Open(std::move(file), std::move(journal), popts, out);
}

}  // namespace

Status ConstraintDatabase::Open(const std::string& path,
                                const DatabaseOptions& options,
                                std::unique_ptr<ConstraintDatabase>* out) {
  std::unique_ptr<ConstraintDatabase> db(new ConstraintDatabase());
  bool rel_existed = false, idx_existed = false;
  CDB_RETURN_IF_ERROR(
      OpenPager(path + ".rel", options, &db->rel_pager_, &rel_existed));
  CDB_RETURN_IF_ERROR(
      OpenPager(path + ".idx", options, &db->idx_pager_, &idx_existed));
  if (rel_existed != idx_existed) {
    return Status::Corruption("half of the database is missing: " + path);
  }

  if (!idx_existed) {
    // Fresh database.
    if (options.slopes.empty()) {
      return Status::InvalidArgument("slope set must be non-empty");
    }
    CDB_RETURN_IF_ERROR(
        Relation::Open(db->rel_pager_.get(), kInvalidPageId, &db->relation_));
    // Fresh relations maintain the bounding-box sidecar from the first
    // insert; the batched refiner uses it for early accept/reject.
    CDB_RETURN_IF_ERROR(db->relation_->EnableBoundingBoxCache());
    Result<PageId> catalog = db->idx_pager_->Allocate();
    if (!catalog.ok()) return catalog.status();
    db->catalog_page_ = catalog.value();
    CDB_RETURN_IF_ERROR(DualIndex::Build(
        db->idx_pager_.get(), db->relation_.get(), SlopeSet(options.slopes),
        options.index_options, &db->index_));
    CDB_RETURN_IF_ERROR(db->StoreCatalog());
    CDB_RETURN_IF_ERROR(db->Flush());
  } else {
    db->catalog_page_ = 1;  // First page ever allocated in the index file.
    CDB_RETURN_IF_ERROR(db->LoadCatalogAndAttach(options));
  }
  *out = std::move(db);
  return Status::OK();
}

ConstraintDatabase::~ConstraintDatabase() {
  // A failed Open() destroys a partially-attached database: pagers may be
  // open while `index_` was never loaded. There is nothing consistent to
  // flush then, and StoreCatalog() needs the index manifest.
  if (idx_pager_ != nullptr && index_ != nullptr) Flush().ok();
}

Status ConstraintDatabase::StoreCatalog() {
  Result<PageRef> ref = idx_pager_->Fetch(catalog_page_);
  if (!ref.ok()) return ref.status();
  char* p = ref.value().data();
  std::memset(p, 0, idx_pager_->page_size());
  DualIndexManifest m = index_->Manifest();
  size_t k = m.slopes.size();
  size_t need = 8 + 4 + 1 + 3 + 4 + 4 + 4 + k * (8 + 4 + 4) + 4;
  if (need > idx_pager_->page_size()) {
    return Status::InvalidArgument("slope set too large for catalog page");
  }
  std::memcpy(p, &kCatalogMagic, 8);
  uint32_t k32 = static_cast<uint32_t>(k);
  std::memcpy(p + 8, &k32, 4);
  uint8_t flags = 0;
  if (m.tight_assignment) flags |= kFlagTight;
  if (m.support_vertical) flags |= kFlagVertical;
  if (relation_->bbox_cache_enabled()) flags |= kFlagBBox;
  p[12] = static_cast<char>(flags);
  PageId rel_root = relation_->root_page();
  std::memcpy(p + 16, &rel_root, 4);
  std::memcpy(p + 20, &m.xmax_meta, 4);
  std::memcpy(p + 24, &m.xmin_meta, 4);
  char* cursor = p + 28;
  for (size_t i = 0; i < k; ++i, cursor += 8) {
    std::memcpy(cursor, &m.slopes[i], 8);
  }
  for (size_t i = 0; i < k; ++i, cursor += 4) {
    std::memcpy(cursor, &m.up_metas[i], 4);
  }
  for (size_t i = 0; i < k; ++i, cursor += 4) {
    std::memcpy(cursor, &m.down_metas[i], 4);
  }
  PageId bbox_root = relation_->bbox_root();
  std::memcpy(cursor, &bbox_root, 4);
  ref.value().MarkDirty();
  return Status::OK();
}

Status ConstraintDatabase::LoadCatalogAndAttach(
    const DatabaseOptions& options) {
  Result<PageRef> ref = idx_pager_->Fetch(catalog_page_);
  if (!ref.ok()) return ref.status();
  const char* p = ref.value().data();
  uint64_t magic;
  std::memcpy(&magic, p, 8);
  if (magic != kCatalogMagic) {
    return Status::Corruption("bad database catalog magic");
  }
  uint32_t k;
  std::memcpy(&k, p + 8, 4);
  uint8_t flags = static_cast<uint8_t>(p[12]);
  DualIndexManifest m;
  m.tight_assignment = (flags & kFlagTight) != 0;
  m.support_vertical = (flags & kFlagVertical) != 0;
  PageId rel_root;
  std::memcpy(&rel_root, p + 16, 4);
  std::memcpy(&m.xmax_meta, p + 20, 4);
  std::memcpy(&m.xmin_meta, p + 24, 4);
  const char* cursor = p + 28;
  m.slopes.resize(k);
  for (uint32_t i = 0; i < k; ++i, cursor += 8) {
    std::memcpy(&m.slopes[i], cursor, 8);
  }
  m.up_metas.resize(k);
  for (uint32_t i = 0; i < k; ++i, cursor += 4) {
    std::memcpy(&m.up_metas[i], cursor, 4);
  }
  m.down_metas.resize(k);
  for (uint32_t i = 0; i < k; ++i, cursor += 4) {
    std::memcpy(&m.down_metas[i], cursor, 4);
  }
  // Databases written before the sidecar existed lack the flag; they open
  // fine and simply refine without box short-circuits.
  PageId bbox_root = kInvalidPageId;
  if ((flags & kFlagBBox) != 0) std::memcpy(&bbox_root, cursor, 4);
  ref.value().Release();

  CDB_RETURN_IF_ERROR(
      Relation::Open(rel_pager_.get(), rel_root, &relation_));
  if ((flags & kFlagBBox) != 0) {
    CDB_RETURN_IF_ERROR(relation_->LoadBoundingBoxCache(bbox_root));
  }
  return DualIndex::Open(idx_pager_.get(), relation_.get(), m,
                         options.index_options, &index_);
}

Result<TupleId> ConstraintDatabase::Insert(const GeneralizedTuple& tuple) {
  if (!tuple.IsSatisfiable()) {
    return Status::InvalidArgument("tuple is unsatisfiable");
  }
  Result<TupleId> id = relation_->Insert(tuple);
  if (!id.ok()) return id.status();
  Status st = index_->Insert(id.value(), tuple);
  if (!st.ok()) {
    // Keep relation and index in sync even on failure.
    relation_->Delete(id.value()).ok();
    return st;
  }
  // The relation root can move when pages fill; keep the catalog current.
  CDB_RETURN_IF_ERROR(StoreCatalog());
  return id;
}

Result<TupleId> ConstraintDatabase::InsertText(const std::string& text) {
  GeneralizedTuple tuple;
  CDB_RETURN_IF_ERROR(ParseGeneralizedTuple(text, &tuple));
  return Insert(tuple);
}

Status ConstraintDatabase::Delete(TupleId id) {
  GeneralizedTuple tuple;
  CDB_RETURN_IF_ERROR(relation_->Get(id, &tuple));
  CDB_RETURN_IF_ERROR(index_->Remove(id, tuple));
  CDB_RETURN_IF_ERROR(relation_->Delete(id));
  return StoreCatalog();
}

Status ConstraintDatabase::Get(TupleId id, GeneralizedTuple* out) const {
  return relation_->Get(id, out);
}

Result<std::vector<TupleId>> ConstraintDatabase::Select(
    SelectionType type, const HalfPlaneQuery& q, QueryMethod method,
    QueryStats* stats) {
  return index_->Select(type, q, method, stats);
}

Result<std::vector<TupleId>> ConstraintDatabase::SelectVertical(
    SelectionType type, const VerticalQuery& q, QueryStats* stats) {
  return index_->SelectVertical(type, q, stats);
}

Status ConstraintDatabase::SelectBatch(
    const std::vector<exec::BatchQuery>& batch, size_t threads,
    std::vector<exec::BatchItemResult>* results) {
  exec::QueryExecutor executor(threads);
  return executor.RunBatch(index_.get(), batch, results);
}

Status ConstraintDatabase::ParseQueryText(const std::string& text,
                                          SelectionType* type, bool* vertical,
                                          HalfPlaneQuery* hp,
                                          VerticalQuery* vq) const {
  // Split "<TYPE> <constraint>".
  size_t i = 0;
  while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) {
    ++i;
  }
  size_t start = i;
  while (i < text.size() && std::isalpha(static_cast<unsigned char>(text[i]))) {
    ++i;
  }
  std::string word = text.substr(start, i - start);
  for (char& c : word) c = static_cast<char>(std::toupper(c));
  if (word == "ALL") {
    *type = SelectionType::kAll;
  } else if (word == "EXIST" || word == "EXISTS") {
    *type = SelectionType::kExist;
  } else {
    return Status::InvalidArgument("query must start with ALL or EXIST");
  }
  std::string rest = text.substr(i);

  // A single-inequality constraint: vertical if it has no y term.
  GeneralizedTuple parsed;
  CDB_RETURN_IF_ERROR(ParseGeneralizedTuple(rest, &parsed));
  if (parsed.size() != 1) {
    return Status::InvalidArgument("query must be a single inequality");
  }
  const Constraint2D& c = parsed.constraints()[0];
  if (ApproxZero(c.b)) {
    if (ApproxZero(c.a)) {
      return Status::InvalidArgument("query constraint has no variables");
    }
    // a*x + c θ 0  ->  x θ' -c/a (flip when a < 0).
    *vertical = true;
    vq->boundary = -c.c / c.a;
    vq->cmp = c.a > 0 ? c.cmp : Negate(c.cmp);
    return Status::OK();
  }
  *vertical = false;
  return ParseHalfPlaneQuery(rest, hp);
}

Result<std::vector<TupleId>> ConstraintDatabase::Query(
    const std::string& text, QueryStats* stats) {
  SelectionType type;
  bool vertical;
  HalfPlaneQuery hp;
  VerticalQuery vq;
  CDB_RETURN_IF_ERROR(ParseQueryText(text, &type, &vertical, &hp, &vq));
  if (vertical) return SelectVertical(type, vq, stats);
  return Select(type, hp, QueryMethod::kAuto, stats);
}

Result<std::string> ConstraintDatabase::Explain(const std::string& text) {
  SelectionType type;
  bool vertical;
  HalfPlaneQuery hp;
  VerticalQuery vq;
  CDB_RETURN_IF_ERROR(ParseQueryText(text, &type, &vertical, &hp, &vq));
  if (vertical) {
    char buf[200];
    const char* tree = (type == SelectionType::kExist) == (vq.cmp == Cmp::kGE)
                           ? "X^max"
                           : "X^min";
    std::snprintf(buf, sizeof(buf),
                  "%s(x %s %g) via vertical support trees\n"
                  "  exact: sweep %s %s from %g\n  no refinement needed\n",
                  type == SelectionType::kAll ? "ALL" : "EXIST",
                  vq.cmp == Cmp::kGE ? ">=" : "<=", vq.boundary, tree,
                  vq.cmp == Cmp::kGE ? "upward" : "downward", vq.boundary);
    return std::string(buf);
  }
  return index_->Explain(type, hp, QueryMethod::kAuto);
}

Status ConstraintDatabase::Flush() {
  CDB_RETURN_IF_ERROR(StoreCatalog());
  CDB_RETURN_IF_ERROR(rel_pager_->Flush());
  return idx_pager_->Flush();
}

}  // namespace cdb
