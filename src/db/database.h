// ConstraintDatabase — the batteries-included facade: a persistent
// generalized relation plus its dual index behind one handle, with a
// catalog page that survives restarts.
//
// Storage layout: two paged files, `<path>.rel` (tuple data) and
// `<path>.idx` (the 2k B+-trees + catalog). Keeping them on separate pagers
// preserves the benchmarkable separation between index page accesses and
// refinement tuple reads. The catalog page in the index file records the
// slope set, index options, every tree's meta page, and the relation's root
// page; Open() with an existing path reattaches everything.
//
// Mutations are single-threaded, like the underlying structures. Reads can
// be served in parallel through SelectBatch, which drives both pagers
// through exec::QueryExecutor (concurrent-read mode; see
// src/exec/query_executor.h and DESIGN.md §2c).

#ifndef CDB_DB_DATABASE_H_
#define CDB_DB_DATABASE_H_

#include <memory>
#include <string>

#include "dualindex/dual_index.h"
#include "exec/query_executor.h"

namespace cdb {

struct DatabaseOptions {
  size_t page_size = kDefaultPageSize;
  size_t cache_frames = 64;
  /// Slope set used when creating a new database (ignored on reopen; the
  /// catalog's set wins). Must be non-empty at creation.
  std::vector<double> slopes = {-1.0, 0.0, 1.0};
  /// Index options at creation; `refine`/`anchor_x` also apply on reopen.
  DualIndexOptions index_options;
  /// Back the database with in-process memory instead of files (`path` is
  /// then only a label; nothing persists).
  bool in_memory = false;
};

/// See file comment.
class ConstraintDatabase {
 public:
  /// Opens the database at `path`, creating it if absent. A database
  /// created with one page size / slope set must be reopened compatibly
  /// (page size is validated; slopes are read back from the catalog).
  static Status Open(const std::string& path, const DatabaseOptions& options,
                     std::unique_ptr<ConstraintDatabase>* out);

  ~ConstraintDatabase();
  ConstraintDatabase(const ConstraintDatabase&) = delete;
  ConstraintDatabase& operator=(const ConstraintDatabase&) = delete;

  /// Inserts a satisfiable tuple into the relation and every index tree.
  Result<TupleId> Insert(const GeneralizedTuple& tuple);

  /// Parses `text` (see constraint/parser.h) and inserts it.
  Result<TupleId> InsertText(const std::string& text);

  /// Removes a tuple everywhere.
  Status Delete(TupleId id);

  /// Fetches a stored tuple.
  Status Get(TupleId id, GeneralizedTuple* out) const;

  /// ALL/EXIST selection against a half-plane.
  Result<std::vector<TupleId>> Select(SelectionType type,
                                      const HalfPlaneQuery& q,
                                      QueryMethod method = QueryMethod::kAuto,
                                      QueryStats* stats = nullptr);

  /// Exact vertical selection (requires support_vertical at creation).
  Result<std::vector<TupleId>> SelectVertical(SelectionType type,
                                              const VerticalQuery& q,
                                              QueryStats* stats = nullptr);

  /// Runs a batch of selections in parallel on `threads` worker threads
  /// (a fresh executor per call; hold a QueryExecutor and use RunBatch
  /// directly to amortize pool startup across batches). Results are
  /// per-query — a failing query reports through its own element without
  /// aborting the rest. No mutation may run concurrently.
  Status SelectBatch(const std::vector<exec::BatchQuery>& batch,
                     size_t threads,
                     std::vector<exec::BatchItemResult>* results);

  /// One-line query language: "ALL <halfplane>" or "EXIST <halfplane>",
  /// where <halfplane> is parser syntax (e.g. "y >= 2x + 1") or a vertical
  /// constraint ("x <= 3").
  Result<std::vector<TupleId>> Query(const std::string& text,
                                     QueryStats* stats = nullptr);

  /// Explains how a Query() text would execute, without running it.
  Result<std::string> Explain(const std::string& text);

  /// Number of live tuples.
  uint64_t size() const { return relation_->size(); }

  /// Durably writes all state (also done on destruction).
  Status Flush();

  Relation* relation() { return relation_.get(); }
  DualIndex* index() { return index_.get(); }
  Pager* relation_pager() { return rel_pager_.get(); }
  Pager* index_pager() { return idx_pager_.get(); }

 private:
  ConstraintDatabase() = default;

  Status LoadCatalogAndAttach(const DatabaseOptions& options);
  Status StoreCatalog();
  Status ParseQueryText(const std::string& text, SelectionType* type,
                        bool* vertical, HalfPlaneQuery* hp,
                        VerticalQuery* vq) const;

  std::unique_ptr<Pager> rel_pager_;
  std::unique_ptr<Pager> idx_pager_;
  std::unique_ptr<Relation> relation_;
  std::unique_ptr<DualIndex> index_;
  PageId catalog_page_ = kInvalidPageId;
};

}  // namespace cdb

#endif  // CDB_DB_DATABASE_H_
