#include "db/check.h"

#include <cstdio>

namespace cdb {

void CheckReport::AddCheck(std::string name, size_t violations_before) {
  Entry e;
  e.name = std::move(name);
  e.violations = violations.size() - violations_before;
  e.ok = e.violations == 0;
  checks.push_back(std::move(e));
}

std::string CheckReport::Summary() const {
  char buf[160];
  if (ok()) {
    std::snprintf(buf, sizeof(buf),
                  "ok: %llu pages verified, %llu free, %llu trees sound",
                  static_cast<unsigned long long>(pages_checked),
                  static_cast<unsigned long long>(free_pages),
                  static_cast<unsigned long long>(trees_checked));
  } else {
    std::snprintf(buf, sizeof(buf),
                  "FAILED: %zu violation(s) across %llu pages / %llu trees",
                  violations.size(),
                  static_cast<unsigned long long>(pages_checked),
                  static_cast<unsigned long long>(trees_checked));
  }
  return buf;
}

Status CheckPagerIntegrity(Pager* pager, CheckReport* report) {
  // Cold reads so every live page goes through checksum verification
  // rather than being served from the buffer pool.
  CDB_RETURN_IF_ERROR(pager->DropCache());
  const auto& free_set = pager->free_pages();
  uint64_t live_seen = 0;
  for (PageId id = 1; id < pager->file_page_count(); ++id) {
    if (free_set.count(id) > 0) {
      // Free pages were checksum-verified by the free-list walk at Open.
      ++report->free_pages;
      continue;
    }
    Result<PageRef> ref = pager->Fetch(id);
    if (ref.ok()) {
      ++report->pages_checked;
      ++live_seen;
      continue;
    }
    if (ref.status().IsCorruption()) {
      report->AddViolation(ref.status().ToString());
      ++live_seen;  // Damaged, but still a live page for the accounting.
      continue;
    }
    return ref.status();  // Environmental failure, not a verdict.
  }
  if (live_seen != pager->live_page_count()) {
    report->AddViolation(
        "page accounting mismatch: meta records " +
        std::to_string(pager->live_page_count()) + " live pages, found " +
        std::to_string(live_seen));
  }
  return Status::OK();
}

namespace {

Status RecordInvariantCheck(const Status& st, const char* what,
                            CheckReport* report) {
  if (st.ok()) {
    ++report->trees_checked;
    return Status::OK();
  }
  if (st.IsCorruption()) {
    report->AddViolation(std::string(what) + ": " + st.ToString());
    return Status::OK();
  }
  return st;
}

}  // namespace

Status CheckBPlusTree(const BPlusTree& tree, CheckReport* report) {
  return RecordInvariantCheck(tree.CheckInvariants(), "b+-tree", report);
}

Status CheckRPlusTree(const RPlusTree& tree, CheckReport* report) {
  return RecordInvariantCheck(tree.CheckInvariants(), "r+-tree", report);
}

Status CheckDatabase(ConstraintDatabase* db, CheckReport* report) {
  size_t before = report->violations.size();
  CDB_RETURN_IF_ERROR(CheckPagerIntegrity(db->relation_pager(), report));
  report->AddCheck("pager.relation", before);

  before = report->violations.size();
  CDB_RETURN_IF_ERROR(CheckPagerIntegrity(db->index_pager(), report));
  report->AddCheck("pager.index", before);

  // Structural invariants of all 2k (+2) index trees. CheckInvariants
  // stops at the first broken tree; the per-page pass above already
  // enumerated low-level damage, so one structural verdict suffices.
  before = report->violations.size();
  Status trees = db->index()->CheckInvariants();
  if (trees.ok()) {
    report->trees_checked += db->index()->tree_count();
  } else if (trees.IsCorruption()) {
    report->AddViolation("dual index: " + trees.ToString());
  } else {
    return trees;
  }
  report->AddCheck("index.trees", before);

  // Every live tuple must deserialize.
  before = report->violations.size();
  uint64_t tuples = 0;
  Status scan = db->relation()->ForEach(
      [&tuples](TupleId, const GeneralizedTuple&) {
        ++tuples;
        return Status::OK();
      });
  if (scan.IsCorruption()) {
    report->AddViolation("relation scan: " + scan.ToString());
  } else if (!scan.ok()) {
    return scan;
  } else if (tuples != db->size()) {
    report->AddViolation("relation scan found " + std::to_string(tuples) +
                         " tuples, directory records " +
                         std::to_string(db->size()));
  }
  report->AddCheck("relation.tuples", before);

  // The bounding-box sidecar drives refinement early-accepts; a stale box
  // must surface here as Corruption, never as a silently wrong result.
  if (db->relation()->bbox_cache_enabled()) {
    before = report->violations.size();
    CDB_RETURN_IF_ERROR(db->relation()->VerifyBoundingBoxCache(
        [report](const std::string& what) {
          report->AddViolation("bbox sidecar: " + what);
        }));
    report->AddCheck("relation.bbox_sidecar", before);
  }
  return Status::OK();
}

void WriteCheckReportJson(const CheckReport& report, obs::JsonWriter* w) {
  w->BeginObject();
  w->Key("schema").Value("cdb-check/v1");
  w->Key("ok").Value(report.ok());
  w->Key("pages_checked").Value(report.pages_checked);
  w->Key("free_pages").Value(report.free_pages);
  w->Key("trees_checked").Value(report.trees_checked);
  w->Key("checks").BeginArray();
  for (const CheckReport::Entry& e : report.checks) {
    w->BeginObject();
    w->Key("name").Value(e.name);
    w->Key("ok").Value(e.ok);
    w->Key("violations").Value(e.violations);
    w->EndObject();
  }
  w->EndArray();
  w->Key("violations").BeginArray();
  for (const std::string& v : report.violations) w->Value(v);
  w->EndArray();
  w->EndObject();
}

}  // namespace cdb
