// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78).
//
// Used by the storage layer to checksum page payloads and journal records
// (DESIGN.md section 2b). Software slice-by-8 implementation: ~1 GB/s on
// commodity hardware, far faster than the 1024-byte pages it protects need.
// The Castagnoli polynomial is chosen over CRC32 (IEEE) for its better
// Hamming distance on short blocks — the same reason LevelDB, ext4 and
// iSCSI use it.

#ifndef CDB_COMMON_CRC32C_H_
#define CDB_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace cdb {

/// Extends `crc` (a running CRC32C of previous bytes, 0 for none) with
/// `n` bytes at `data`. Masking conventions: plain, unmasked CRC.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

/// CRC32C of a single buffer.
inline uint32_t Crc32c(const void* data, size_t n) {
  return Crc32cExtend(0, data, n);
}

}  // namespace cdb

#endif  // CDB_COMMON_CRC32C_H_
