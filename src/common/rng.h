// Deterministic random number generation for workloads and tests.

#ifndef CDB_COMMON_RNG_H_
#define CDB_COMMON_RNG_H_

#include <cstdint>
#include <random>

namespace cdb {

/// Seeded pseudo-random generator. All workload generation and randomized
/// tests draw from an Rng so runs are reproducible from the seed alone.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Bernoulli draw with probability p of true.
  bool Chance(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// Derives a decorrelated child seed from (seed, stream) with a splitmix64
/// finalizer. Nearby inputs — consecutive worker ids over one base seed —
/// yield statistically independent streams, unlike `seed + worker_id`,
/// which hands neighboring workers heavily overlapping mt19937 states.
inline uint64_t SplitSeed(uint64_t seed, uint64_t stream) {
  uint64_t z = seed + 0x9e3779b97f4a7c15ull * (stream + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace cdb

#endif  // CDB_COMMON_RNG_H_
