// Status: lightweight error propagation for cdbindex.
//
// Core library paths do not throw exceptions; fallible operations return a
// Status (or Result<T>, see result.h) in the style of LevelDB/RocksDB.

#ifndef CDB_COMMON_STATUS_H_
#define CDB_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace cdb {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kNotFound,
  kInvalidArgument,
  kIOError,
  kCorruption,
  kNotSupported,
  kOutOfRange,
  kInternal,
  kUnavailable,       // transient failure; safe to retry (see IsTransient()).
  kDeadlineExceeded,  // query ran past its QueryContext deadline.
  kCancelled,         // query observed a CancelToken.
};

/// Outcome of a fallible operation: an error code plus a human-readable
/// message. The OK status carries no message and is cheap to copy.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsNotSupported() const { return code_ == StatusCode::kNotSupported; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }

  /// True for failures that a bounded retry may cure (the operation did not
  /// corrupt state and the fault is expected to clear). Only kUnavailable
  /// qualifies: kIOError/kCorruption are persistent, kDeadlineExceeded and
  /// kCancelled are caller decisions that a retry must respect.
  bool IsTransient() const { return code_ == StatusCode::kUnavailable; }

  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// "OK" or "<category>: <message>".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  StatusCode code_;
  std::string msg_;
};

/// Propagates a non-OK Status to the caller.
#define CDB_RETURN_IF_ERROR(expr)            \
  do {                                       \
    ::cdb::Status _st = (expr);              \
    if (!_st.ok()) return _st;               \
  } while (0)

}  // namespace cdb

#endif  // CDB_COMMON_STATUS_H_
