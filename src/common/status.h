// Status: lightweight error propagation for cdbindex.
//
// Core library paths do not throw exceptions; fallible operations return a
// Status (or Result<T>, see result.h) in the style of LevelDB/RocksDB.

#ifndef CDB_COMMON_STATUS_H_
#define CDB_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace cdb {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kNotFound,
  kInvalidArgument,
  kIOError,
  kCorruption,
  kNotSupported,
  kOutOfRange,
  kInternal,
};

/// Outcome of a fallible operation: an error code plus a human-readable
/// message. The OK status carries no message and is cheap to copy.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsNotSupported() const { return code_ == StatusCode::kNotSupported; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }

  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// "OK" or "<category>: <message>".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  StatusCode code_;
  std::string msg_;
};

/// Propagates a non-OK Status to the caller.
#define CDB_RETURN_IF_ERROR(expr)            \
  do {                                       \
    ::cdb::Status _st = (expr);              \
    if (!_st.ok()) return _st;               \
  } while (0)

}  // namespace cdb

#endif  // CDB_COMMON_STATUS_H_
