// Result<T>: a value-or-Status union, the companion of Status for functions
// that produce a value on success.

#ifndef CDB_COMMON_RESULT_H_
#define CDB_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace cdb {

/// Holds either a value of type T or a non-OK Status.
///
/// Usage:
///   Result<PageId> r = pager.Allocate();
///   if (!r.ok()) return r.status();
///   PageId id = r.value();
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error Status. Must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }

  /// The error status; OK when a value is present.
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the value or `fallback` when holding an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;  // OK iff value_ holds a value.
  std::optional<T> value_;
};

/// Propagates the error of a Result expression, or assigns its value.
#define CDB_ASSIGN_OR_RETURN(lhs, expr)          \
  lhs = ({                                       \
    auto _res = (expr);                          \
    if (!_res.ok()) return _res.status();        \
    std::move(_res).value();                     \
  })

}  // namespace cdb

#endif  // CDB_COMMON_RESULT_H_
