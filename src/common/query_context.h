// Per-query deadline and cooperative cancellation.
//
// A QueryContext rides alongside a query through the index paths
// (DualIndex::Select, DDimDualIndex::Select, the R-tree searches). The
// query methods call Check() at page-fetch boundaries — once per leaf/node
// fetched and once per candidate refined — and return early with
// kCancelled/kDeadlineExceeded when it fires. Early exits are clean by
// construction: leaf cursors hold no pins between moves, and the callers
// fill FilterCounts::abandoned so accounting still balances.
//
// Header-only and compiled into cdb_common users without linking cdb_obs:
// the obs::Clock interface (obs/clock.h) is itself header-only, so this is
// an interface-only dependency that does not invert the library layering.

#ifndef CDB_COMMON_QUERY_CONTEXT_H_
#define CDB_COMMON_QUERY_CONTEXT_H_

#include <atomic>
#include <cstdint>

#include "common/status.h"
#include "obs/clock.h"

namespace cdb {

/// One-shot cancellation flag, shared between the thread running a query
/// and any thread that wants to stop it. Cancellation is cooperative: the
/// query notices at its next Check() call.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Deadline and cancellation state for one query. Cheap to construct; all
/// members optional. A null/default context never fires.
struct QueryContext {
  /// Absolute deadline in the clock's epoch, in nanoseconds; 0 = none.
  uint64_t deadline_ns = 0;
  /// Clock the deadline is checked against; null = obs::DefaultClock().
  /// Tests inject a ManualClock to place deadlines deterministically.
  obs::Clock* clock = nullptr;
  /// Optional cancellation flag; not owned. Null = not cancellable.
  const CancelToken* cancel = nullptr;

  /// OK while the query may keep running. Cancellation outranks the
  /// deadline: a query that is both cancelled and late reports kCancelled.
  Status Check() const {
    if (cancel != nullptr && cancel->cancelled()) {
      return Status::Cancelled("query cancelled");
    }
    if (deadline_ns != 0) {
      obs::Clock* c = clock != nullptr ? clock : obs::DefaultClock();
      if (c->NowNanos() >= deadline_ns) {
        return Status::DeadlineExceeded("query deadline exceeded");
      }
    }
    return Status::OK();
  }
};

/// Checkpoint helper: propagates when `ctx` (may be null) has fired.
inline Status CheckQueryContext(const QueryContext* ctx) {
  return ctx == nullptr ? Status::OK() : ctx->Check();
}

}  // namespace cdb

#endif  // CDB_COMMON_QUERY_CONTEXT_H_
