// I/O statistics counters.
//
// The paper's evaluation (Figures 8-9) is expressed in page accesses, so the
// buffer pool attributes every page fetch to an IoStats instance that the
// benchmark harness can snapshot and reset around each query.

#ifndef CDB_COMMON_IO_STATS_H_
#define CDB_COMMON_IO_STATS_H_

#include <cstdint>

namespace cdb {

/// Counters for page-level I/O. "Fetches" counts every logical page access
/// through the buffer pool; "reads"/"writes" count the subset that reached
/// the backing file (buffer-pool misses and evictions). Every fetch is
/// either a buffer hit or a physical read, so
///   page_fetches == buffer_hits + page_reads
/// holds at all times (warm or cold cache); storage_test asserts it.
struct IoStats {
  uint64_t page_fetches = 0;
  uint64_t page_reads = 0;
  uint64_t page_writes = 0;
  uint64_t pages_allocated = 0;
  uint64_t buffer_hits = 0;        // Fetches served from a resident frame.
  uint64_t buffer_evictions = 0;   // Frames dropped under capacity pressure.
  uint64_t dirty_writebacks = 0;   // Subset of page_writes forced by
                                   // *eviction* of a dirty frame (the rest
                                   // come from explicit Flush()).

  void Reset() { *this = IoStats(); }

  IoStats Delta(const IoStats& earlier) const {
    IoStats d;
    d.page_fetches = page_fetches - earlier.page_fetches;
    d.page_reads = page_reads - earlier.page_reads;
    d.page_writes = page_writes - earlier.page_writes;
    d.pages_allocated = pages_allocated - earlier.pages_allocated;
    d.buffer_hits = buffer_hits - earlier.buffer_hits;
    d.buffer_evictions = buffer_evictions - earlier.buffer_evictions;
    d.dirty_writebacks = dirty_writebacks - earlier.dirty_writebacks;
    return d;
  }
};

}  // namespace cdb

#endif  // CDB_COMMON_IO_STATS_H_
