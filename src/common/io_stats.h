// I/O statistics counters.
//
// The paper's evaluation (Figures 8-9) is expressed in page accesses, so the
// buffer pool attributes every page fetch to an IoStats instance that the
// benchmark harness can snapshot and reset around each query.

#ifndef CDB_COMMON_IO_STATS_H_
#define CDB_COMMON_IO_STATS_H_

#include <cstdint>

namespace cdb {

/// Counters for page-level I/O. "Fetches" counts every logical page access
/// through the buffer pool; "reads"/"writes" count the subset that reached
/// the backing file (buffer-pool misses and evictions). Every fetch is
/// either a buffer hit or a physical read, so
///   page_fetches == buffer_hits + page_reads
/// holds at all times (warm or cold cache); storage_test asserts it.
struct IoStats {
  uint64_t page_fetches = 0;
  uint64_t page_reads = 0;
  uint64_t page_writes = 0;
  uint64_t pages_allocated = 0;
  uint64_t buffer_hits = 0;        // Fetches served from a resident frame.
  uint64_t buffer_evictions = 0;   // Frames dropped under capacity pressure.
  uint64_t dirty_writebacks = 0;   // Subset of page_writes forced by
                                   // *eviction* of a dirty frame (the rest
                                   // come from explicit Flush()).

  // Durability counters (ISSUE 2). Journal traffic is deliberately not
  // folded into page_reads/page_writes: the paper's page-access figures
  // measure the index structures, not the recovery machinery.
  uint64_t checksum_failures = 0;  // Pages rejected by CRC32C verification.
  uint64_t journal_records = 0;    // Pre-images appended to the journal.
  uint64_t journal_commits = 0;    // Flush() transactions committed.
  uint64_t journal_replays = 0;    // Recoveries that found a live journal.
  uint64_t pages_rolled_back = 0;  // Pre-images applied during recovery.

  void Reset() { *this = IoStats(); }

  /// Adds `other` counter-wise. Used to fold a PagerReadSession's local
  /// delta back into the pager-wide accumulator when the session closes.
  void Merge(const IoStats& other) {
    page_fetches += other.page_fetches;
    page_reads += other.page_reads;
    page_writes += other.page_writes;
    pages_allocated += other.pages_allocated;
    buffer_hits += other.buffer_hits;
    buffer_evictions += other.buffer_evictions;
    dirty_writebacks += other.dirty_writebacks;
    checksum_failures += other.checksum_failures;
    journal_records += other.journal_records;
    journal_commits += other.journal_commits;
    journal_replays += other.journal_replays;
    pages_rolled_back += other.pages_rolled_back;
  }

  IoStats Delta(const IoStats& earlier) const {
    IoStats d;
    d.page_fetches = page_fetches - earlier.page_fetches;
    d.page_reads = page_reads - earlier.page_reads;
    d.page_writes = page_writes - earlier.page_writes;
    d.pages_allocated = pages_allocated - earlier.pages_allocated;
    d.buffer_hits = buffer_hits - earlier.buffer_hits;
    d.buffer_evictions = buffer_evictions - earlier.buffer_evictions;
    d.dirty_writebacks = dirty_writebacks - earlier.dirty_writebacks;
    d.checksum_failures = checksum_failures - earlier.checksum_failures;
    d.journal_records = journal_records - earlier.journal_records;
    d.journal_commits = journal_commits - earlier.journal_commits;
    d.journal_replays = journal_replays - earlier.journal_replays;
    d.pages_rolled_back = pages_rolled_back - earlier.pages_rolled_back;
    return d;
  }
};

}  // namespace cdb

#endif  // CDB_COMMON_IO_STATS_H_
