#include "common/status.h"

namespace cdb {

namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace cdb
