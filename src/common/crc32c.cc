#include "common/crc32c.h"

#include <array>
#include <bit>
#include <cstring>

namespace cdb {

// The slice-by-8 loop folds the running crc into the low bytes of each
// 64-bit word, which is only correct on little-endian hosts.
static_assert(std::endian::native == std::endian::little);

namespace {

// 8 tables of 256 entries, generated once at startup. Table 0 is the plain
// byte-at-a-time table; table k folds a byte that sits k positions deeper
// in the message, letting the hot loop consume 8 bytes per iteration.
struct Crc32cTables {
  std::array<std::array<uint32_t, 256>, 8> t;

  Crc32cTables() {
    constexpr uint32_t kPoly = 0x82F63B78u;  // Reflected Castagnoli.
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int j = 0; j < 8; ++j) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = t[0][i];
      for (size_t k = 1; k < 8; ++k) {
        crc = t[0][crc & 0xFF] ^ (crc >> 8);
        t[k][i] = crc;
      }
    }
  }
};

const Crc32cTables& Tables() {
  static const Crc32cTables* tables = new Crc32cTables();
  return *tables;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n) {
  const auto& t = Tables().t;
  const uint8_t* p = static_cast<const uint8_t*>(data);
  crc = ~crc;
  // Byte-at-a-time until 8-byte aligned.
  while (n > 0 && (reinterpret_cast<uintptr_t>(p) & 7) != 0) {
    crc = t[0][(crc ^ *p++) & 0xFF] ^ (crc >> 8);
    --n;
  }
  while (n >= 8) {
    uint64_t word;
    std::memcpy(&word, p, 8);
    word ^= crc;  // Little-endian: low 4 bytes absorb the running crc.
    crc = t[7][word & 0xFF] ^ t[6][(word >> 8) & 0xFF] ^
          t[5][(word >> 16) & 0xFF] ^ t[4][(word >> 24) & 0xFF] ^
          t[3][(word >> 32) & 0xFF] ^ t[2][(word >> 40) & 0xFF] ^
          t[1][(word >> 48) & 0xFF] ^ t[0][(word >> 56) & 0xFF];
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    crc = t[0][(crc ^ *p++) & 0xFF] ^ (crc >> 8);
    --n;
  }
  return ~crc;
}

}  // namespace cdb
