// Epsilon-aware floating-point comparisons for the geometry layer.
//
// The dual transform and polyhedron predicates operate on doubles derived
// from user constraints; all sign tests go through these helpers so the
// tolerance is applied uniformly. The tolerance is absolute-plus-relative:
// suitable for the coordinate magnitudes used in constraint databases (the
// paper's working window is [-50, 50]^2).

#ifndef CDB_COMMON_FLOAT_CMP_H_
#define CDB_COMMON_FLOAT_CMP_H_

#include <algorithm>
#include <cmath>

namespace cdb {

/// Default comparison tolerance.
inline constexpr double kEps = 1e-9;

/// True when |a - b| is within eps, scaled by the magnitudes involved.
inline bool ApproxEq(double a, double b, double eps = kEps) {
  if (a == b) return true;  // Covers equal infinities.
  if (std::isinf(a) || std::isinf(b)) return false;
  double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  return std::fabs(a - b) <= eps * scale;
}

/// a < b beyond tolerance.
inline bool DefinitelyLess(double a, double b, double eps = kEps) {
  if (std::isinf(a) || std::isinf(b)) return a < b;
  double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  return b - a > eps * scale;
}

/// a > b beyond tolerance.
inline bool DefinitelyGreater(double a, double b, double eps = kEps) {
  return DefinitelyLess(b, a, eps);
}

/// a <= b up to tolerance.
inline bool LessOrEq(double a, double b, double eps = kEps) {
  return !DefinitelyGreater(a, b, eps);
}

/// a >= b up to tolerance.
inline bool GreaterOrEq(double a, double b, double eps = kEps) {
  return !DefinitelyLess(a, b, eps);
}

/// True when |a| is within tolerance of zero.
inline bool ApproxZero(double a, double eps = kEps) {
  return std::fabs(a) <= eps;
}

}  // namespace cdb

#endif  // CDB_COMMON_FLOAT_CMP_H_
