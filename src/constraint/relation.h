// Generalized relation: a persistent, paged store of generalized tuples.
//
// Tuples are serialized into data pages managed by a Pager; every Get()
// costs one page fetch, which is how the benchmark harness charges the
// refinement step of the approximation techniques. The id -> location
// directory is kept in memory and rebuilt by scanning on Open (records are
// self-describing), keeping the on-disk format simple and the page count —
// the Figure 10 space metric — free of directory overhead for all
// structures alike.

#ifndef CDB_CONSTRAINT_RELATION_H_
#define CDB_CONSTRAINT_RELATION_H_

#include <atomic>
#include <functional>
#include <memory>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "constraint/generalized_tuple.h"
#include "storage/pager.h"

namespace cdb {

/// See file comment.
class Relation {
 public:
  /// Opens a relation stored in `pager` (which the caller owns and must keep
  /// alive). `root_page` is the first data page of an existing relation, or
  /// kInvalidPageId to create a new one.
  static Status Open(Pager* pager, PageId root_page,
                     std::unique_ptr<Relation>* out);

  /// First data page; persist it to reopen the relation later.
  PageId root_page() const { return root_page_; }

  /// The backing pager (for I/O accounting by callers).
  Pager* pager() const { return pager_; }

  /// Appends a tuple and returns its id. The tuple must have at least one
  /// constraint and fit a page (constraint count is bounded by the page
  /// size; ~40 constraints at 1 KiB pages — generalized tuples in the paper
  /// have 3-6).
  Result<TupleId> Insert(const GeneralizedTuple& tuple);

  /// Fetches tuple `id`. Costs one page access.
  Status Get(TupleId id, GeneralizedTuple* out) const;

  /// Tombstones tuple `id`. Its page is returned to the pager when the last
  /// live record on it is deleted.
  Status Delete(TupleId id);

  /// Number of live tuples.
  uint64_t size() const { return live_count_; }

  /// Calls fn(id, tuple) for every live tuple in id order. Stops and
  /// propagates the first non-OK status returned by fn.
  Status ForEach(
      const std::function<Status(TupleId, const GeneralizedTuple&)>& fn) const;

  /// Prepares insert-only online appends under the pager's single-writer
  /// mode: reserves directory capacity for up to `max_inserts` new tuples
  /// (readers index the directory lock-free, so it must never reallocate
  /// while they run) and initializes the published tuple count. Call
  /// *before* Pager::BeginConcurrentReads(true); while that mode is
  /// active, Insert fails once the reservation is exhausted and Delete is
  /// rejected outright.
  Status BeginOnlineAppends(size_t max_inserts);

  /// Makes every tuple appended so far visible to single-writer-mode
  /// readers. Call after the pager's Flush() published their pages.
  void PublishAppends() {
    published_tuples_.store(directory_.size(), std::memory_order_release);
  }

 private:
  struct Location {
    PageId page = kInvalidPageId;
    uint16_t offset = 0;
    bool live = false;
  };

  explicit Relation(Pager* pager) : pager_(pager) {}

  Status RebuildDirectory();

  Pager* pager_;
  PageId root_page_ = kInvalidPageId;
  PageId tail_page_ = kInvalidPageId;
  std::vector<Location> directory_;  // Indexed by TupleId.
  uint64_t live_count_ = 0;

  // Online-append state. Readers bound-check ids against the published
  // count (acquire) instead of directory_.size(), whose vector bookkeeping
  // the writer's push_back mutates; entries below the published count are
  // immutable while the mode is active (Delete is rejected).
  size_t swmr_capacity_ = 0;
  std::atomic<uint64_t> published_tuples_{0};
};

}  // namespace cdb

#endif  // CDB_CONSTRAINT_RELATION_H_
