// Generalized relation: a persistent, paged store of generalized tuples.
//
// Tuples are serialized into data pages managed by a Pager; every Get()
// costs one page fetch, which is how the benchmark harness charges the
// refinement step of the approximation techniques. The id -> location
// directory is kept in memory and rebuilt by scanning on Open (records are
// self-describing), keeping the on-disk format simple and the page count —
// the Figure 10 space metric — free of directory overhead for all
// structures alike.

#ifndef CDB_CONSTRAINT_RELATION_H_
#define CDB_CONSTRAINT_RELATION_H_

#include <atomic>
#include <functional>
#include <memory>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "constraint/generalized_tuple.h"
#include "geometry/rect.h"
#include "storage/pager.h"

namespace cdb {

/// See file comment.
class Relation {
 public:
  /// Opens a relation stored in `pager` (which the caller owns and must keep
  /// alive). `root_page` is the first data page of an existing relation, or
  /// kInvalidPageId to create a new one.
  static Status Open(Pager* pager, PageId root_page,
                     std::unique_ptr<Relation>* out);

  /// First data page; persist it to reopen the relation later.
  PageId root_page() const { return root_page_; }

  /// The backing pager (for I/O accounting by callers).
  Pager* pager() const { return pager_; }

  /// Appends a tuple and returns its id. The tuple must have at least one
  /// constraint and fit a page (constraint count is bounded by the page
  /// size; ~40 constraints at 1 KiB pages — generalized tuples in the paper
  /// have 3-6).
  Result<TupleId> Insert(const GeneralizedTuple& tuple);

  /// Fetches tuple `id`. Costs one page access.
  Status Get(TupleId id, GeneralizedTuple* out) const;

  /// Resolves `id` to its data page without fetching it — the visibility
  /// checks of Get() (published bound under single-writer mode, live flag)
  /// with none of the I/O. The batch refiner uses this to sort candidates
  /// into page runs before pinning anything.
  Status LocateTuple(TupleId id, PageId* page) const;

  /// Deserializes tuple `id` out of `page`, which the caller already holds
  /// pinned and which must be the page LocateTuple resolved for this id.
  /// Together with LocateTuple this splits Get() so one pinned page can
  /// serve every candidate clustered on it.
  Status GetFromPage(const PageRef& page, TupleId id,
                     GeneralizedTuple* out) const;

  // --- Bounding-box sidecar (ISSUE 8c) ---------------------------------
  //
  // A per-relation page chain caching each tuple's AABB (or "unbounded")
  // so refinement can decide box-provable candidates without fetching the
  // tuple at all. Slots are id-positional; records are written at Insert
  // and tombstoned at Delete. An in-memory mirror makes the per-candidate
  // lookup free of I/O; the persisted chain exists so reopening a database
  // does not have to recompute every box, and so tools/cdb_check can
  // verify the cache against the tuples it claims to bound.

  /// Creates the sidecar for this relation and backfills one slot per
  /// existing directory entry. Idempotent once enabled.
  Status EnableBoundingBoxCache();

  /// Loads an existing sidecar rooted at `bbox_root` into the mirror. The
  /// persisted slot count must cover every directory entry (shorter =
  /// Corruption); trailing slots beyond the directory — left behind when
  /// deletes freed whole trailing data pages before a reopen — are
  /// truncated so the id-positional mapping survives future appends.
  Status LoadBoundingBoxCache(PageId bbox_root);

  /// First sidecar page; persist it (catalog) to reload the cache later.
  PageId bbox_root() const { return bbox_root_; }

  bool bbox_cache_enabled() const { return bbox_enabled_; }

  /// True when tuple `id` is visible, live, and has a cached *finite*
  /// bounding box, which is copied to `out`. Pure in-memory lookup — never
  /// touches the pager. Unbounded tuples (no finite AABB) return false and
  /// take the full refinement path.
  bool CachedBoundingBox(TupleId id, Rect* out) const;

  /// Re-reads the persisted sidecar and checks, for every live tuple, that
  /// the stored slot matches the box recomputed from the tuple's
  /// constraints (exact double equality — both sides run the same code).
  /// Every mismatch is reported through `on_violation`; the return status
  /// is non-OK only for I/O failures.
  Status VerifyBoundingBoxCache(
      const std::function<void(const std::string&)>& on_violation) const;

  /// Tombstones tuple `id`. Its page is returned to the pager when the last
  /// live record on it is deleted.
  Status Delete(TupleId id);

  /// Number of live tuples.
  uint64_t size() const { return live_count_; }

  /// Calls fn(id, tuple) for every live tuple in id order. Stops and
  /// propagates the first non-OK status returned by fn.
  Status ForEach(
      const std::function<Status(TupleId, const GeneralizedTuple&)>& fn) const;

  /// Prepares insert-only online appends under the pager's single-writer
  /// mode: reserves directory capacity for up to `max_inserts` new tuples
  /// (readers index the directory lock-free, so it must never reallocate
  /// while they run) and initializes the published tuple count. Call
  /// *before* Pager::BeginConcurrentReads(true); while that mode is
  /// active, Insert fails once the reservation is exhausted and Delete is
  /// rejected outright.
  Status BeginOnlineAppends(size_t max_inserts);

  /// Makes every tuple appended so far visible to single-writer-mode
  /// readers. Call after the pager's Flush() published their pages. Also
  /// extends the published range of the bounding-box sidecar: box slots
  /// appended since the last publish become readable only here, so a
  /// reader can never index mirror entries the writer is still producing
  /// (ids past either bound read as "no box" and take the full LP path).
  void PublishAppends() {
    published_box_slots_.store(bbox_cache_.size(), std::memory_order_release);
    published_tuples_.store(directory_.size(), std::memory_order_release);
  }

 private:
  struct Location {
    PageId page = kInvalidPageId;
    uint16_t offset = 0;
    bool live = false;
  };

  /// Mirror of one sidecar slot.
  struct BoxEntry {
    bool has_box = false;
    Rect box;
  };

  explicit Relation(Pager* pager) : pager_(pager) {}

  Status RebuildDirectory();
  /// Appends one sidecar slot (persisted record + mirror entry) for the
  /// tuple whose id equals the current slot count.
  Status AppendBoxSlot(bool has_box, const Rect& box);
  /// Tombstones the persisted sidecar slot for `id` and clears its mirror.
  Status ClearBoxSlot(TupleId id);
  size_t BoxSlotsPerPage() const;

  Pager* pager_;
  PageId root_page_ = kInvalidPageId;
  PageId tail_page_ = kInvalidPageId;
  std::vector<Location> directory_;  // Indexed by TupleId.
  uint64_t live_count_ = 0;

  // Bounding-box sidecar state (all empty until Enable/Load).
  bool bbox_enabled_ = false;
  PageId bbox_root_ = kInvalidPageId;
  std::vector<PageId> bbox_pages_;   // Chain in order, for O(1) id -> page.
  std::vector<BoxEntry> bbox_cache_;  // Mirror, indexed by TupleId.

  // Online-append state. Readers bound-check ids against the published
  // count (acquire) instead of directory_.size(), whose vector bookkeeping
  // the writer's push_back mutates; entries below the published count are
  // immutable while the mode is active (Delete is rejected).
  size_t swmr_capacity_ = 0;
  std::atomic<uint64_t> published_tuples_{0};
  // Published bound on bbox_cache_ — single-writer-mode readers bound-check
  // sidecar lookups against this (acquire) instead of bbox_cache_.size(),
  // whose vector bookkeeping the writer's push_back mutates.
  std::atomic<uint64_t> published_box_slots_{0};
};

}  // namespace cdb

#endif  // CDB_CONSTRAINT_RELATION_H_
