#include "constraint/naive_eval.h"

#include <cmath>
#include <limits>

#include "geometry/dual.h"
#include "geometry/lp2d.h"

namespace cdb {


Result<std::vector<TupleId>> NaiveSelect(const Relation& relation,
                                         SelectionType type,
                                         const HalfPlaneQuery& query) {
  std::vector<TupleId> out;
  Status st = relation.ForEach(
      [&](TupleId id, const GeneralizedTuple& tuple) -> Status {
        bool hit = type == SelectionType::kAll
                       ? ExactAll(tuple.constraints(), query)
                       : ExactExist(tuple.constraints(), query);
        if (hit) out.push_back(id);
        return Status::OK();
      });
  if (!st.ok()) return st;
  return out;
}

bool ExactAllVertical(const std::vector<Constraint2D>& constraints,
                      const VerticalQuery& q) {
  if (q.cmp == Cmp::kGE) {
    double mn = XMinValue(constraints);
    return !std::isnan(mn) && GreaterOrEq(mn, q.boundary);
  }
  double mx = XMaxValue(constraints);
  return !std::isnan(mx) && LessOrEq(mx, q.boundary);
}

bool ExactExistVertical(const std::vector<Constraint2D>& constraints,
                        const VerticalQuery& q) {
  if (q.cmp == Cmp::kGE) {
    double mx = XMaxValue(constraints);
    return !std::isnan(mx) && GreaterOrEq(mx, q.boundary);
  }
  double mn = XMinValue(constraints);
  return !std::isnan(mn) && LessOrEq(mn, q.boundary);
}

Result<std::vector<TupleId>> NaiveSelectVertical(const Relation& relation,
                                                 SelectionType type,
                                                 const VerticalQuery& query) {
  std::vector<TupleId> out;
  Status st = relation.ForEach(
      [&](TupleId id, const GeneralizedTuple& tuple) -> Status {
        bool hit = type == SelectionType::kAll
                       ? ExactAllVertical(tuple.constraints(), query)
                       : ExactExistVertical(tuple.constraints(), query);
        if (hit) out.push_back(id);
        return Status::OK();
      });
  if (!st.ok()) return st;
  return out;
}

}  // namespace cdb
