// d-dimensional generalized relation: the paged store for GeneralizedTupleD
// (Section 4.4 workloads). Mirrors Relation's design: self-describing
// records on a doubly-linked page chain, an in-memory directory rebuilt on
// open, one page access per Get.

#ifndef CDB_CONSTRAINT_RELATION_D_H_
#define CDB_CONSTRAINT_RELATION_D_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "constraint/generalized_tuple.h"
#include "storage/pager.h"

namespace cdb {

/// See file comment.
class RelationD {
 public:
  /// Opens a d-dimensional relation in `pager`; kInvalidPageId creates a
  /// fresh one. All tuples of one relation share the dimension `dim`.
  static Status Open(Pager* pager, size_t dim, PageId root_page,
                     std::unique_ptr<RelationD>* out);

  PageId root_page() const { return root_page_; }
  size_t dim() const { return dim_; }
  Pager* pager() const { return pager_; }

  Result<TupleId> Insert(const GeneralizedTupleD& tuple);
  Status Get(TupleId id, GeneralizedTupleD* out) const;

  /// Get() split in two for the page-clustered batch refiner: resolve the
  /// data page without I/O, then deserialize any number of this page's
  /// tuples while the caller keeps it pinned.
  Status LocateTuple(TupleId id, PageId* page) const;
  Status GetFromPage(const PageRef& page, TupleId id,
                     GeneralizedTupleD* out) const;

  Status Delete(TupleId id);
  uint64_t size() const { return live_count_; }

  Status ForEach(
      const std::function<Status(TupleId, const GeneralizedTupleD&)>& fn)
      const;

 private:
  struct Location {
    PageId page = kInvalidPageId;
    uint16_t offset = 0;
    bool live = false;
  };

  RelationD(Pager* pager, size_t dim) : pager_(pager), dim_(dim) {}

  Status RebuildDirectory();

  Pager* pager_;
  size_t dim_;
  PageId root_page_ = kInvalidPageId;
  PageId tail_page_ = kInvalidPageId;
  std::vector<Location> directory_;
  uint64_t live_count_ = 0;
};

}  // namespace cdb

#endif  // CDB_CONSTRAINT_RELATION_D_H_
