// Text syntax for generalized tuples.
//
// A tuple is a conjunction of linear constraints over variables x and y,
// separated by "," or "and" (case-insensitive), e.g.
//
//   "x >= 0, y >= 0, x + y <= 4"
//   "y >= 2*x - 1 and y <= 10"
//   "2x + 3y = 6"                      (equality expands into <= and >=)
//
// Each side of a comparison is a linear expression: terms of the form
// `c`, `x`, `y`, `c*x`, `cx`, combined with + and -. Strict comparisons
// (<, >) are accepted and treated as their closures (the paper's footnote 2
// notes the extension to strict operators; topological closure does not
// change ALL/EXIST answers for full-dimensional extensions).

#ifndef CDB_CONSTRAINT_PARSER_H_
#define CDB_CONSTRAINT_PARSER_H_

#include <string>

#include "common/status.h"
#include "constraint/generalized_tuple.h"

namespace cdb {

/// Parses `text` into a generalized tuple. On error, returns
/// InvalidArgument with a message pointing at the offending token.
Status ParseGeneralizedTuple(const std::string& text, GeneralizedTuple* out);

/// Parses a half-plane query of the form "y <= 2*x + 3" or "y >= -0.5x".
/// The left side must be exactly `y` (the paper's non-vertical query form).
Status ParseHalfPlaneQuery(const std::string& text, HalfPlaneQuery* out);

/// Renders a tuple back to the textual syntax (one constraint per ", ").
std::string FormatGeneralizedTuple(const GeneralizedTuple& tuple);

}  // namespace cdb

#endif  // CDB_CONSTRAINT_PARSER_H_
