#include "constraint/generalized_tuple.h"

#include "geometry/lp2d.h"

namespace cdb {

bool GeneralizedTuple::IsSatisfiable() const {
  return IsSatisfiable2D(constraints_);
}

}  // namespace cdb
