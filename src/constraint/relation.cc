#include "constraint/relation.h"

#include <algorithm>
#include <cstring>
#include <functional>

namespace cdb {

namespace {

// Data-page header.
struct PageHeader {
  PageId next;
  PageId prev;
  uint16_t used;          // Bytes consumed including the header.
  uint16_t live_records;
};

constexpr size_t kHeaderSize = sizeof(PageHeader);
constexpr uint8_t kLiveFlag = 1;

// Record layout: id u32 | m u16 | flags u8 | per-constraint 25 bytes
// (a f64, b f64, c f64, cmp u8).
constexpr size_t kRecordFixed = 7;
constexpr size_t kPerConstraint = 25;

size_t RecordLength(size_t m) { return kRecordFixed + m * kPerConstraint; }

void ReadHeader(const char* page, PageHeader* h) {
  std::memcpy(h, page, sizeof(*h));
}
void WriteHeader(char* page, const PageHeader& h) {
  std::memcpy(page, &h, sizeof(h));
}

void SerializeRecord(char* dst, TupleId id, const GeneralizedTuple& tuple,
                     uint8_t flags) {
  uint16_t m = static_cast<uint16_t>(tuple.size());
  std::memcpy(dst, &id, 4);
  std::memcpy(dst + 4, &m, 2);
  dst[6] = static_cast<char>(flags);
  char* p = dst + kRecordFixed;
  for (const Constraint2D& c : tuple.constraints()) {
    std::memcpy(p, &c.a, 8);
    std::memcpy(p + 8, &c.b, 8);
    std::memcpy(p + 16, &c.c, 8);
    p[24] = static_cast<char>(c.cmp == Cmp::kLE ? 0 : 1);
    p += kPerConstraint;
  }
}

void DeserializeRecord(const char* src, TupleId* id, uint8_t* flags,
                       GeneralizedTuple* tuple) {
  uint16_t m;
  std::memcpy(id, src, 4);
  std::memcpy(&m, src + 4, 2);
  *flags = static_cast<uint8_t>(src[6]);
  std::vector<Constraint2D> cons;
  cons.reserve(m);
  const char* p = src + kRecordFixed;
  for (uint16_t i = 0; i < m; ++i) {
    Constraint2D c;
    std::memcpy(&c.a, p, 8);
    std::memcpy(&c.b, p + 8, 8);
    std::memcpy(&c.c, p + 16, 8);
    c.cmp = p[24] == 0 ? Cmp::kLE : Cmp::kGE;
    cons.push_back(c);
    p += kPerConstraint;
  }
  *tuple = GeneralizedTuple(std::move(cons));
}

uint16_t RecordConstraintCount(const char* src) {
  uint16_t m;
  std::memcpy(&m, src + 4, 2);
  return m;
}

// Bounding-box sidecar page header and record layout (ISSUE 8c).
// Header: next u32 | count u16 | pad u16. Record (id-positional):
// flags u8 (bit 0 = tuple has a finite box) | xlo, ylo, xhi, yhi f64.
struct BoxPageHeader {
  PageId next;
  uint16_t count;
  uint16_t pad;
};

constexpr size_t kBoxHeaderSize = sizeof(BoxPageHeader);
constexpr size_t kBoxRecordSize = 33;
constexpr uint8_t kBoxFiniteFlag = 1;

void ReadBoxHeader(const char* page, BoxPageHeader* h) {
  std::memcpy(h, page, sizeof(*h));
}
void WriteBoxHeader(char* page, const BoxPageHeader& h) {
  std::memcpy(page, &h, sizeof(h));
}

void SerializeBoxRecord(char* dst, bool has_box, const Rect& box) {
  dst[0] = static_cast<char>(has_box ? kBoxFiniteFlag : 0);
  std::memcpy(dst + 1, &box.xlo, 8);
  std::memcpy(dst + 9, &box.ylo, 8);
  std::memcpy(dst + 17, &box.xhi, 8);
  std::memcpy(dst + 25, &box.yhi, 8);
}

void DeserializeBoxRecord(const char* src, bool* has_box, Rect* box) {
  *has_box = (static_cast<uint8_t>(src[0]) & kBoxFiniteFlag) != 0;
  std::memcpy(&box->xlo, src + 1, 8);
  std::memcpy(&box->ylo, src + 9, 8);
  std::memcpy(&box->xhi, src + 17, 8);
  std::memcpy(&box->yhi, src + 25, 8);
}

}  // namespace

Status Relation::Open(Pager* pager, PageId root_page,
                      std::unique_ptr<Relation>* out) {
  std::unique_ptr<Relation> rel(new Relation(pager));
  if (root_page == kInvalidPageId) {
    Result<PageId> id = pager->Allocate();
    if (!id.ok()) return id.status();
    rel->root_page_ = rel->tail_page_ = id.value();
    Result<PageRef> ref = pager->Fetch(id.value());
    if (!ref.ok()) return ref.status();
    PageHeader h{kInvalidPageId, kInvalidPageId,
                 static_cast<uint16_t>(kHeaderSize), 0};
    WriteHeader(ref.value().data(), h);
    ref.value().MarkDirty();
  } else {
    rel->root_page_ = root_page;
    CDB_RETURN_IF_ERROR(rel->RebuildDirectory());
  }
  *out = std::move(rel);
  return Status::OK();
}

Status Relation::RebuildDirectory() {
  PageId page = root_page_;
  PageId prev = kInvalidPageId;
  while (page != kInvalidPageId) {
    Result<PageRef> ref = pager_->Fetch(page);
    if (!ref.ok()) return ref.status();
    PageHeader h;
    ReadHeader(ref.value().data(), &h);
    size_t off = kHeaderSize;
    while (off < h.used) {
      const char* rec = ref.value().data() + off;
      TupleId id;
      uint8_t flags;
      std::memcpy(&id, rec, 4);
      flags = static_cast<uint8_t>(rec[6]);
      uint16_t m = RecordConstraintCount(rec);
      if (directory_.size() <= id) directory_.resize(id + 1);
      directory_[id] = {page, static_cast<uint16_t>(off),
                        (flags & kLiveFlag) != 0};
      if (flags & kLiveFlag) ++live_count_;
      off += RecordLength(m);
    }
    prev = page;
    page = h.next;
  }
  tail_page_ = prev == kInvalidPageId ? root_page_ : prev;
  return Status::OK();
}

Result<TupleId> Relation::Insert(const GeneralizedTuple& tuple) {
  if (tuple.empty()) {
    return Status::InvalidArgument("tuple must have at least one constraint");
  }
  if (pager_->concurrent_reads_active() &&
      directory_.size() >= swmr_capacity_) {
    return Status::InvalidArgument(
        "online append capacity exhausted (BeginOnlineAppends reservation)");
  }
  size_t len = RecordLength(tuple.size());
  if (len + kHeaderSize > pager_->page_size()) {
    return Status::InvalidArgument("tuple too large for a page");
  }
  TupleId id = static_cast<TupleId>(directory_.size());

  Result<PageRef> tail = pager_->Fetch(tail_page_);
  if (!tail.ok()) return tail.status();
  PageHeader h;
  ReadHeader(tail.value().data(), &h);

  if (h.used + len > pager_->page_size()) {
    // Start a new tail page.
    Result<PageId> fresh = pager_->Allocate();
    if (!fresh.ok()) return fresh.status();
    Result<PageRef> fresh_ref = pager_->Fetch(fresh.value());
    if (!fresh_ref.ok()) return fresh_ref.status();
    PageHeader nh{kInvalidPageId, tail_page_,
                  static_cast<uint16_t>(kHeaderSize), 0};
    WriteHeader(fresh_ref.value().data(), nh);
    fresh_ref.value().MarkDirty();
    h.next = fresh.value();
    WriteHeader(tail.value().data(), h);
    tail.value().MarkDirty();
    tail_page_ = fresh.value();
    tail = std::move(fresh_ref);
    h = nh;
  }

  SerializeRecord(tail.value().data() + h.used, id, tuple, kLiveFlag);
  directory_.push_back({tail_page_, h.used, true});
  h.used = static_cast<uint16_t>(h.used + len);
  ++h.live_records;
  WriteHeader(tail.value().data(), h);
  tail.value().MarkDirty();
  ++live_count_;

  if (bbox_enabled_) {
    tail.value().Release();
    Rect box;
    bool has_box = tuple.GetBoundingRect(&box);
    if (!has_box) box = Rect();
    CDB_RETURN_IF_ERROR(AppendBoxSlot(has_box, box));
  }
  return id;
}

Status Relation::Get(TupleId id, GeneralizedTuple* out) const {
  if (pager_->InSwmrReadContext()) {
    // Reader under single-writer mode: bound-check against the published
    // count — directory_.size() is the writer's, and unpublished entries
    // reference pages the pager would refuse to fetch anyway.
    if (id >= published_tuples_.load(std::memory_order_acquire) ||
        !directory_[id].live) {
      return Status::NotFound("tuple " + std::to_string(id));
    }
  } else if (id >= directory_.size() || !directory_[id].live) {
    return Status::NotFound("tuple " + std::to_string(id));
  }
  const Location& loc = directory_[id];
  Result<PageRef> ref = pager_->Fetch(loc.page);
  if (!ref.ok()) return ref.status();
  TupleId stored;
  uint8_t flags;
  DeserializeRecord(ref.value().data() + loc.offset, &stored, &flags, out);
  if (stored != id || !(flags & kLiveFlag)) {
    return Status::Corruption("directory/page mismatch for tuple " +
                              std::to_string(id));
  }
  return Status::OK();
}

Status Relation::LocateTuple(TupleId id, PageId* page) const {
  if (pager_->InSwmrReadContext()) {
    if (id >= published_tuples_.load(std::memory_order_acquire) ||
        !directory_[id].live) {
      return Status::NotFound("tuple " + std::to_string(id));
    }
  } else if (id >= directory_.size() || !directory_[id].live) {
    return Status::NotFound("tuple " + std::to_string(id));
  }
  *page = directory_[id].page;
  return Status::OK();
}

Status Relation::GetFromPage(const PageRef& page, TupleId id,
                             GeneralizedTuple* out) const {
  const Location& loc = directory_[id];
  TupleId stored;
  uint8_t flags;
  DeserializeRecord(page.data() + loc.offset, &stored, &flags, out);
  if (stored != id || !(flags & kLiveFlag)) {
    return Status::Corruption("directory/page mismatch for tuple " +
                              std::to_string(id));
  }
  return Status::OK();
}

Status Relation::Delete(TupleId id) {
  if (pager_->concurrent_reads_active()) {
    // Online serving is insert-only: a delete would mutate directory
    // entries readers consult lock-free.
    return Status::InvalidArgument("Delete during online appends");
  }
  if (id >= directory_.size() || !directory_[id].live) {
    return Status::NotFound("tuple " + std::to_string(id));
  }
  Location& loc = directory_[id];
  Result<PageRef> ref = pager_->Fetch(loc.page);
  if (!ref.ok()) return ref.status();
  ref.value().data()[loc.offset + 6] = 0;  // Clear the live flag.
  PageHeader h;
  ReadHeader(ref.value().data(), &h);
  --h.live_records;
  WriteHeader(ref.value().data(), h);
  ref.value().MarkDirty();
  loc.live = false;
  --live_count_;

  // Unlink and free a fully-dead page, unless it is the only page.
  if (h.live_records == 0 && !(loc.page == root_page_ && h.next == kInvalidPageId)) {
    PageId dead = loc.page;
    PageId prev = h.prev, next = h.next;
    ref.value().Release();
    if (prev != kInvalidPageId) {
      Result<PageRef> p = pager_->Fetch(prev);
      if (!p.ok()) return p.status();
      PageHeader ph;
      ReadHeader(p.value().data(), &ph);
      ph.next = next;
      WriteHeader(p.value().data(), ph);
      p.value().MarkDirty();
    } else {
      root_page_ = next;
    }
    if (next != kInvalidPageId) {
      Result<PageRef> n = pager_->Fetch(next);
      if (!n.ok()) return n.status();
      PageHeader nh;
      ReadHeader(n.value().data(), &nh);
      nh.prev = prev;
      WriteHeader(n.value().data(), nh);
      n.value().MarkDirty();
    } else {
      tail_page_ = prev;
    }
    CDB_RETURN_IF_ERROR(pager_->Free(dead));
  }
  if (bbox_enabled_) CDB_RETURN_IF_ERROR(ClearBoxSlot(id));
  return Status::OK();
}

Status Relation::BeginOnlineAppends(size_t max_inserts) {
  if (pager_->concurrent_reads_active()) {
    return Status::InvalidArgument(
        "BeginOnlineAppends after BeginConcurrentReads");
  }
  swmr_capacity_ = directory_.size() + max_inserts;
  directory_.reserve(swmr_capacity_);
  // The box mirror is indexed lock-free by readers just like the
  // directory, so it must never reallocate while they run.
  if (bbox_enabled_) bbox_cache_.reserve(swmr_capacity_);
  published_box_slots_.store(bbox_cache_.size(), std::memory_order_release);
  published_tuples_.store(directory_.size(), std::memory_order_release);
  return Status::OK();
}

size_t Relation::BoxSlotsPerPage() const {
  return (pager_->page_size() - kBoxHeaderSize) / kBoxRecordSize;
}

Status Relation::AppendBoxSlot(bool has_box, const Rect& box) {
  Result<PageRef> tail = pager_->Fetch(bbox_pages_.back());
  if (!tail.ok()) return tail.status();
  BoxPageHeader h;
  ReadBoxHeader(tail.value().data(), &h);
  if (h.count >= BoxSlotsPerPage()) {
    Result<PageId> fresh = pager_->Allocate();
    if (!fresh.ok()) return fresh.status();
    Result<PageRef> fresh_ref = pager_->Fetch(fresh.value());
    if (!fresh_ref.ok()) return fresh_ref.status();
    BoxPageHeader nh{kInvalidPageId, 0, 0};
    WriteBoxHeader(fresh_ref.value().data(), nh);
    fresh_ref.value().MarkDirty();
    h.next = fresh.value();
    WriteBoxHeader(tail.value().data(), h);
    tail.value().MarkDirty();
    bbox_pages_.push_back(fresh.value());
    tail = std::move(fresh_ref);
    h = nh;
  }
  SerializeBoxRecord(
      tail.value().data() + kBoxHeaderSize + h.count * kBoxRecordSize,
      has_box, box);
  ++h.count;
  WriteBoxHeader(tail.value().data(), h);
  tail.value().MarkDirty();
  bbox_cache_.push_back({has_box, box});
  return Status::OK();
}

Status Relation::ClearBoxSlot(TupleId id) {
  if (id >= bbox_cache_.size()) return Status::OK();
  bbox_cache_[id].has_box = false;
  const size_t per_page = BoxSlotsPerPage();
  Result<PageRef> ref = pager_->Fetch(bbox_pages_[id / per_page]);
  if (!ref.ok()) return ref.status();
  char* rec =
      ref.value().data() + kBoxHeaderSize + (id % per_page) * kBoxRecordSize;
  rec[0] = 0;
  ref.value().MarkDirty();
  return Status::OK();
}

Status Relation::EnableBoundingBoxCache() {
  if (bbox_enabled_) return Status::OK();
  if (pager_->concurrent_reads_active()) {
    // Readers index the mirror lock-free; building it under them would
    // race the backfill. Enable before serving starts.
    return Status::InvalidArgument(
        "EnableBoundingBoxCache during concurrent reads");
  }
  Result<PageId> root = pager_->Allocate();
  if (!root.ok()) return root.status();
  {
    Result<PageRef> ref = pager_->Fetch(root.value());
    if (!ref.ok()) return ref.status();
    BoxPageHeader h{kInvalidPageId, 0, 0};
    WriteBoxHeader(ref.value().data(), h);
    ref.value().MarkDirty();
  }
  bbox_root_ = root.value();
  bbox_pages_.assign(1, root.value());
  bbox_cache_.clear();
  // Cover a pending BeginOnlineAppends reservation too, so the mirror
  // never reallocates once single-writer serving starts.
  bbox_cache_.reserve(std::max(directory_.size(), swmr_capacity_));
  bbox_enabled_ = true;
  // Backfill one slot per existing directory entry; dead ids get empty
  // slots so the id-positional mapping holds.
  for (TupleId id = 0; id < directory_.size(); ++id) {
    Rect box;
    bool has_box = false;
    if (directory_[id].live) {
      GeneralizedTuple tuple;
      CDB_RETURN_IF_ERROR(Get(id, &tuple));
      has_box = tuple.GetBoundingRect(&box);
    }
    if (!has_box) box = Rect();
    CDB_RETURN_IF_ERROR(AppendBoxSlot(has_box, box));
  }
  return Status::OK();
}

Status Relation::LoadBoundingBoxCache(PageId bbox_root) {
  if (bbox_enabled_) {
    return Status::InvalidArgument("bounding-box cache already enabled");
  }
  if (pager_->concurrent_reads_active()) {
    return Status::InvalidArgument(
        "LoadBoundingBoxCache during concurrent reads");
  }
  if (bbox_root == kInvalidPageId) {
    return Status::InvalidArgument("invalid bounding-box sidecar root");
  }
  const size_t per_page = BoxSlotsPerPage();
  bbox_pages_.clear();
  bbox_cache_.clear();
  bbox_cache_.reserve(std::max(directory_.size(), swmr_capacity_));
  PageId page = bbox_root;
  while (page != kInvalidPageId) {
    Result<PageRef> ref = pager_->Fetch(page);
    if (!ref.ok()) return ref.status();
    BoxPageHeader h;
    ReadBoxHeader(ref.value().data(), &h);
    if (h.count > per_page) {
      return Status::Corruption("bbox sidecar slot count exceeds capacity");
    }
    if (h.next != kInvalidPageId && h.count != per_page) {
      // Slots are id-positional, so only the tail page may be partial.
      return Status::Corruption("partial non-tail bbox sidecar page");
    }
    bbox_pages_.push_back(page);
    for (uint16_t i = 0; i < h.count; ++i) {
      bool has_box;
      Rect box;
      DeserializeBoxRecord(
          ref.value().data() + kBoxHeaderSize + i * kBoxRecordSize, &has_box,
          &box);
      bbox_cache_.push_back({has_box, box});
    }
    page = h.next;
  }
  if (bbox_cache_.size() < directory_.size()) {
    return Status::Corruption("bbox sidecar shorter than relation directory");
  }
  bbox_root_ = bbox_root;
  bbox_enabled_ = true;
  if (bbox_cache_.size() > directory_.size()) {
    // Deletes freed whole trailing data pages before the last close, so the
    // directory shrank; truncate the sidecar so future appends land on the
    // right id-positional slot.
    const size_t keep = directory_.size();
    const size_t keep_pages = keep == 0 ? 1 : (keep + per_page - 1) / per_page;
    for (size_t i = keep_pages; i < bbox_pages_.size(); ++i) {
      CDB_RETURN_IF_ERROR(pager_->Free(bbox_pages_[i]));
    }
    Result<PageRef> tail = pager_->Fetch(bbox_pages_[keep_pages - 1]);
    if (!tail.ok()) return tail.status();
    BoxPageHeader h;
    ReadBoxHeader(tail.value().data(), &h);
    h.next = kInvalidPageId;
    h.count = static_cast<uint16_t>(keep - (keep_pages - 1) * per_page);
    WriteBoxHeader(tail.value().data(), h);
    tail.value().MarkDirty();
    bbox_pages_.resize(keep_pages);
    bbox_cache_.resize(keep);
  }
  return Status::OK();
}

bool Relation::CachedBoundingBox(TupleId id, Rect* out) const {
  if (!bbox_enabled_) return false;
  if (pager_->InSwmrReadContext()) {
    // Readers never consult bbox_cache_.size(): its vector bookkeeping is
    // the writer's to mutate mid-append. Ids at or past either published
    // bound — tuples appended after the last PublishAppends, or beyond the
    // sidecar's record range entirely — read as "no box" and take the full
    // refinement path; never an out-of-bounds read, never a stale accept.
    if (id >= published_tuples_.load(std::memory_order_acquire) ||
        id >= published_box_slots_.load(std::memory_order_acquire)) {
      return false;
    }
  } else if (id >= directory_.size() || id >= bbox_cache_.size()) {
    return false;
  }
  if (!directory_[id].live) return false;
  const BoxEntry& e = bbox_cache_[id];
  if (!e.has_box) return false;
  *out = e.box;
  return true;
}

Status Relation::VerifyBoundingBoxCache(
    const std::function<void(const std::string&)>& on_violation) const {
  if (!bbox_enabled_) {
    return Status::InvalidArgument("bounding-box cache not enabled");
  }
  const size_t per_page = BoxSlotsPerPage();
  PageId page = bbox_root_;
  size_t slot = 0;
  while (page != kInvalidPageId) {
    Result<PageRef> ref = pager_->Fetch(page);
    if (!ref.ok()) return ref.status();
    BoxPageHeader h;
    ReadBoxHeader(ref.value().data(), &h);
    if (h.count > per_page) {
      on_violation("bbox sidecar page " + std::to_string(page) +
                   " slot count exceeds capacity");
      return Status::OK();
    }
    if (h.next != kInvalidPageId && h.count != per_page) {
      on_violation("partial non-tail bbox sidecar page " +
                   std::to_string(page));
    }
    for (uint16_t i = 0; i < h.count; ++i, ++slot) {
      bool stored_has;
      Rect stored;
      DeserializeBoxRecord(
          ref.value().data() + kBoxHeaderSize + i * kBoxRecordSize,
          &stored_has, &stored);
      if (slot >= directory_.size()) {
        on_violation("bbox sidecar slot " + std::to_string(slot) +
                     " beyond relation directory");
        continue;
      }
      if (!directory_[slot].live) {
        if (stored_has) {
          on_violation("bbox sidecar slot " + std::to_string(slot) +
                       " claims a box for a dead tuple");
        }
        continue;
      }
      GeneralizedTuple tuple;
      CDB_RETURN_IF_ERROR(Get(static_cast<TupleId>(slot), &tuple));
      Rect want;
      bool want_has = tuple.GetBoundingRect(&want);
      // Both sides of the comparison run the same BoundingRect code, so a
      // healthy sidecar matches to the exact bit pattern.
      bool same = stored_has == want_has &&
                  (!want_has || (std::memcmp(&stored.xlo, &want.xlo, 8) == 0 &&
                                 std::memcmp(&stored.ylo, &want.ylo, 8) == 0 &&
                                 std::memcmp(&stored.xhi, &want.xhi, 8) == 0 &&
                                 std::memcmp(&stored.yhi, &want.yhi, 8) == 0));
      if (!same) {
        on_violation("stale bounding box for tuple " + std::to_string(slot));
      }
    }
    page = h.next;
  }
  if (slot != bbox_cache_.size()) {
    on_violation("bbox sidecar slot count disagrees with loaded mirror");
  }
  return Status::OK();
}

Status Relation::ForEach(
    const std::function<Status(TupleId, const GeneralizedTuple&)>& fn) const {
  for (TupleId id = 0; id < directory_.size(); ++id) {
    if (!directory_[id].live) continue;
    GeneralizedTuple tuple;
    CDB_RETURN_IF_ERROR(Get(id, &tuple));
    CDB_RETURN_IF_ERROR(fn(id, tuple));
  }
  return Status::OK();
}

}  // namespace cdb
