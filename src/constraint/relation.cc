#include "constraint/relation.h"

#include <cstring>
#include <functional>

namespace cdb {

namespace {

// Data-page header.
struct PageHeader {
  PageId next;
  PageId prev;
  uint16_t used;          // Bytes consumed including the header.
  uint16_t live_records;
};

constexpr size_t kHeaderSize = sizeof(PageHeader);
constexpr uint8_t kLiveFlag = 1;

// Record layout: id u32 | m u16 | flags u8 | per-constraint 25 bytes
// (a f64, b f64, c f64, cmp u8).
constexpr size_t kRecordFixed = 7;
constexpr size_t kPerConstraint = 25;

size_t RecordLength(size_t m) { return kRecordFixed + m * kPerConstraint; }

void ReadHeader(const char* page, PageHeader* h) {
  std::memcpy(h, page, sizeof(*h));
}
void WriteHeader(char* page, const PageHeader& h) {
  std::memcpy(page, &h, sizeof(h));
}

void SerializeRecord(char* dst, TupleId id, const GeneralizedTuple& tuple,
                     uint8_t flags) {
  uint16_t m = static_cast<uint16_t>(tuple.size());
  std::memcpy(dst, &id, 4);
  std::memcpy(dst + 4, &m, 2);
  dst[6] = static_cast<char>(flags);
  char* p = dst + kRecordFixed;
  for (const Constraint2D& c : tuple.constraints()) {
    std::memcpy(p, &c.a, 8);
    std::memcpy(p + 8, &c.b, 8);
    std::memcpy(p + 16, &c.c, 8);
    p[24] = static_cast<char>(c.cmp == Cmp::kLE ? 0 : 1);
    p += kPerConstraint;
  }
}

void DeserializeRecord(const char* src, TupleId* id, uint8_t* flags,
                       GeneralizedTuple* tuple) {
  uint16_t m;
  std::memcpy(id, src, 4);
  std::memcpy(&m, src + 4, 2);
  *flags = static_cast<uint8_t>(src[6]);
  std::vector<Constraint2D> cons;
  cons.reserve(m);
  const char* p = src + kRecordFixed;
  for (uint16_t i = 0; i < m; ++i) {
    Constraint2D c;
    std::memcpy(&c.a, p, 8);
    std::memcpy(&c.b, p + 8, 8);
    std::memcpy(&c.c, p + 16, 8);
    c.cmp = p[24] == 0 ? Cmp::kLE : Cmp::kGE;
    cons.push_back(c);
    p += kPerConstraint;
  }
  *tuple = GeneralizedTuple(std::move(cons));
}

uint16_t RecordConstraintCount(const char* src) {
  uint16_t m;
  std::memcpy(&m, src + 4, 2);
  return m;
}

}  // namespace

Status Relation::Open(Pager* pager, PageId root_page,
                      std::unique_ptr<Relation>* out) {
  std::unique_ptr<Relation> rel(new Relation(pager));
  if (root_page == kInvalidPageId) {
    Result<PageId> id = pager->Allocate();
    if (!id.ok()) return id.status();
    rel->root_page_ = rel->tail_page_ = id.value();
    Result<PageRef> ref = pager->Fetch(id.value());
    if (!ref.ok()) return ref.status();
    PageHeader h{kInvalidPageId, kInvalidPageId,
                 static_cast<uint16_t>(kHeaderSize), 0};
    WriteHeader(ref.value().data(), h);
    ref.value().MarkDirty();
  } else {
    rel->root_page_ = root_page;
    CDB_RETURN_IF_ERROR(rel->RebuildDirectory());
  }
  *out = std::move(rel);
  return Status::OK();
}

Status Relation::RebuildDirectory() {
  PageId page = root_page_;
  PageId prev = kInvalidPageId;
  while (page != kInvalidPageId) {
    Result<PageRef> ref = pager_->Fetch(page);
    if (!ref.ok()) return ref.status();
    PageHeader h;
    ReadHeader(ref.value().data(), &h);
    size_t off = kHeaderSize;
    while (off < h.used) {
      const char* rec = ref.value().data() + off;
      TupleId id;
      uint8_t flags;
      std::memcpy(&id, rec, 4);
      flags = static_cast<uint8_t>(rec[6]);
      uint16_t m = RecordConstraintCount(rec);
      if (directory_.size() <= id) directory_.resize(id + 1);
      directory_[id] = {page, static_cast<uint16_t>(off),
                        (flags & kLiveFlag) != 0};
      if (flags & kLiveFlag) ++live_count_;
      off += RecordLength(m);
    }
    prev = page;
    page = h.next;
  }
  tail_page_ = prev == kInvalidPageId ? root_page_ : prev;
  return Status::OK();
}

Result<TupleId> Relation::Insert(const GeneralizedTuple& tuple) {
  if (tuple.empty()) {
    return Status::InvalidArgument("tuple must have at least one constraint");
  }
  if (pager_->concurrent_reads_active() &&
      directory_.size() >= swmr_capacity_) {
    return Status::InvalidArgument(
        "online append capacity exhausted (BeginOnlineAppends reservation)");
  }
  size_t len = RecordLength(tuple.size());
  if (len + kHeaderSize > pager_->page_size()) {
    return Status::InvalidArgument("tuple too large for a page");
  }
  TupleId id = static_cast<TupleId>(directory_.size());

  Result<PageRef> tail = pager_->Fetch(tail_page_);
  if (!tail.ok()) return tail.status();
  PageHeader h;
  ReadHeader(tail.value().data(), &h);

  if (h.used + len > pager_->page_size()) {
    // Start a new tail page.
    Result<PageId> fresh = pager_->Allocate();
    if (!fresh.ok()) return fresh.status();
    Result<PageRef> fresh_ref = pager_->Fetch(fresh.value());
    if (!fresh_ref.ok()) return fresh_ref.status();
    PageHeader nh{kInvalidPageId, tail_page_,
                  static_cast<uint16_t>(kHeaderSize), 0};
    WriteHeader(fresh_ref.value().data(), nh);
    fresh_ref.value().MarkDirty();
    h.next = fresh.value();
    WriteHeader(tail.value().data(), h);
    tail.value().MarkDirty();
    tail_page_ = fresh.value();
    tail = std::move(fresh_ref);
    h = nh;
  }

  SerializeRecord(tail.value().data() + h.used, id, tuple, kLiveFlag);
  directory_.push_back({tail_page_, h.used, true});
  h.used = static_cast<uint16_t>(h.used + len);
  ++h.live_records;
  WriteHeader(tail.value().data(), h);
  tail.value().MarkDirty();
  ++live_count_;
  return id;
}

Status Relation::Get(TupleId id, GeneralizedTuple* out) const {
  if (pager_->InSwmrReadContext()) {
    // Reader under single-writer mode: bound-check against the published
    // count — directory_.size() is the writer's, and unpublished entries
    // reference pages the pager would refuse to fetch anyway.
    if (id >= published_tuples_.load(std::memory_order_acquire) ||
        !directory_[id].live) {
      return Status::NotFound("tuple " + std::to_string(id));
    }
  } else if (id >= directory_.size() || !directory_[id].live) {
    return Status::NotFound("tuple " + std::to_string(id));
  }
  const Location& loc = directory_[id];
  Result<PageRef> ref = pager_->Fetch(loc.page);
  if (!ref.ok()) return ref.status();
  TupleId stored;
  uint8_t flags;
  DeserializeRecord(ref.value().data() + loc.offset, &stored, &flags, out);
  if (stored != id || !(flags & kLiveFlag)) {
    return Status::Corruption("directory/page mismatch for tuple " +
                              std::to_string(id));
  }
  return Status::OK();
}

Status Relation::Delete(TupleId id) {
  if (pager_->concurrent_reads_active()) {
    // Online serving is insert-only: a delete would mutate directory
    // entries readers consult lock-free.
    return Status::InvalidArgument("Delete during online appends");
  }
  if (id >= directory_.size() || !directory_[id].live) {
    return Status::NotFound("tuple " + std::to_string(id));
  }
  Location& loc = directory_[id];
  Result<PageRef> ref = pager_->Fetch(loc.page);
  if (!ref.ok()) return ref.status();
  ref.value().data()[loc.offset + 6] = 0;  // Clear the live flag.
  PageHeader h;
  ReadHeader(ref.value().data(), &h);
  --h.live_records;
  WriteHeader(ref.value().data(), h);
  ref.value().MarkDirty();
  loc.live = false;
  --live_count_;

  // Unlink and free a fully-dead page, unless it is the only page.
  if (h.live_records == 0 && !(loc.page == root_page_ && h.next == kInvalidPageId)) {
    PageId dead = loc.page;
    PageId prev = h.prev, next = h.next;
    ref.value().Release();
    if (prev != kInvalidPageId) {
      Result<PageRef> p = pager_->Fetch(prev);
      if (!p.ok()) return p.status();
      PageHeader ph;
      ReadHeader(p.value().data(), &ph);
      ph.next = next;
      WriteHeader(p.value().data(), ph);
      p.value().MarkDirty();
    } else {
      root_page_ = next;
    }
    if (next != kInvalidPageId) {
      Result<PageRef> n = pager_->Fetch(next);
      if (!n.ok()) return n.status();
      PageHeader nh;
      ReadHeader(n.value().data(), &nh);
      nh.prev = prev;
      WriteHeader(n.value().data(), nh);
      n.value().MarkDirty();
    } else {
      tail_page_ = prev;
    }
    CDB_RETURN_IF_ERROR(pager_->Free(dead));
  }
  return Status::OK();
}

Status Relation::BeginOnlineAppends(size_t max_inserts) {
  if (pager_->concurrent_reads_active()) {
    return Status::InvalidArgument(
        "BeginOnlineAppends after BeginConcurrentReads");
  }
  swmr_capacity_ = directory_.size() + max_inserts;
  directory_.reserve(swmr_capacity_);
  published_tuples_.store(directory_.size(), std::memory_order_release);
  return Status::OK();
}

Status Relation::ForEach(
    const std::function<Status(TupleId, const GeneralizedTuple&)>& fn) const {
  for (TupleId id = 0; id < directory_.size(); ++id) {
    if (!directory_[id].live) continue;
    GeneralizedTuple tuple;
    CDB_RETURN_IF_ERROR(Get(id, &tuple));
    CDB_RETURN_IF_ERROR(fn(id, tuple));
  }
  return Status::OK();
}

}  // namespace cdb
