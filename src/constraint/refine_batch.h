// Shared candidate-batch refiner (ISSUE 8 tentpole).
//
// Every query family — dual T1/T2, the d-dimensional index, the R-tree
// baselines — ends its filter step with the same tail: fetch each surviving
// candidate tuple, run the exact LP predicate, book the outcome into
// FilterCounts. This module is that tail, in exactly one place, with three
// composable optimizations over the historical per-candidate loop:
//
//  (a) page clustering — candidates arrive in ascending TupleId order,
//      which is physical page-chain order for an append-only relation, so
//      consecutive candidates cluster on the same tuple page. The refiner
//      pins each distinct page once and refines every candidate clustered
//      on it while pinned, turning O(candidates) logical fetches into
//      O(distinct pages) and moving QueryContext checkpoints to page
//      granularity.
//  (b) SoA kernels — each tuple's constraints are normalized once into
//      contiguous arrays (geometry/lp2d.h NormSoa2D) and the sign tests run
//      as flat autovectorizable loops, decision-identical to the scalar
//      ExactAll/ExactExist path (DESIGN.md §2h).
//  (c) bounding-box early-accept — when the relation carries an AABB
//      sidecar (Relation::EnableBoundingBoxCache), candidates the box
//      already proves are decided without fetching the tuple at all:
//      ALL-accepts book as FilterCounts::early_accepts, EXIST-rejects as
//      refine_rejects, and FilterCounts::Balances() holds unchanged.
//
// SetRefineBatchingEnabled(false) reverts to the historical scalar loop
// (per-candidate checkpoint + Get + "fetch-tuple"/"lp" spans) through the
// same entry points — the in-binary reference the differential tests and
// the before/after benchmarks compare against.

#ifndef CDB_CONSTRAINT_REFINE_BATCH_H_
#define CDB_CONSTRAINT_REFINE_BATCH_H_

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "common/query_context.h"
#include "common/status.h"
#include "constraint/naive_eval.h"
#include "constraint/relation.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace cdb {

/// Process-wide switch between the batched refiner and the historical
/// scalar reference loop. Defaults to true; benchmarks flip it to measure
/// both substrates in one binary. The flag is atomic, but atomicity alone
/// is not enough: a query must run *entirely* on one substrate or its
/// FilterCounts mix scalar and batched booking. Every refinement entry
/// point therefore reads the toggle exactly once per query and threads the
/// resolved mode through — never re-reads it mid-query.
void SetRefineBatchingEnabled(bool enabled);
bool RefineBatchingEnabled();

/// Refines the ascending, deduplicated candidate ids in `ids` in place:
/// on success `ids` holds the accepted ids, still ascending. `lp_calls` is
/// the per-family LP counter ("dual.refine.lp_calls" etc. — box-decided
/// candidates never increment it); `filter` receives the
/// early_accepts/refine_accepts/refine_rejects booking and `false_hits`
/// the rejected count. On error `ids` is left untouched and the caller
/// books the unprocessed tail as FilterCounts::abandoned.
Status RefineBatch2D(const Relation& relation, SelectionType type,
                     const HalfPlaneQuery& q, obs::Counter* lp_calls,
                     const QueryContext* ctx, std::vector<TupleId>* ids,
                     obs::FilterCounts* filter, uint64_t* false_hits);

/// Generic page-clustered refinement driver for relation types without a
/// 2-D bounding-box sidecar (the d-dimensional family). `pred(tuple)` is
/// the exact predicate. Same contract and booking as RefineBatch2D.
/// `batched` is the substrate resolved *once* for the whole query — the
/// caller reads RefineBatchingEnabled() a single time and passes the
/// result, so a concurrent toggle flip can never tear one query's
/// FilterCounts across both loops; false runs the historical scalar loop.
template <typename RelationT, typename TupleT, typename Pred>
Status RefinePageClustered(const RelationT& relation, obs::Counter* lp_calls,
                           const QueryContext* ctx, std::vector<TupleId>* ids,
                           obs::FilterCounts* filter, uint64_t* false_hits,
                           const Pred& pred, bool batched) {
  CDB_TRACE_SPAN("refine");
  std::vector<TupleId> kept;
  kept.reserve(ids->size());

  if (!batched) {
    for (TupleId id : *ids) {
      // Checkpoint before each tuple fetch; unprocessed candidates are
      // booked as abandoned by the caller.
      CDB_RETURN_IF_ERROR(CheckQueryContext(ctx));
      TupleT tuple;
      {
        CDB_TRACE_SPAN("fetch-tuple");
        CDB_RETURN_IF_ERROR(relation.Get(id, &tuple));
      }
      CDB_TRACE_SPAN("lp");
      lp_calls->Increment();
      if (pred(tuple)) {
        kept.push_back(id);
        ++filter->refine_accepts;
      } else {
        ++*false_hits;
        ++filter->refine_rejects;
      }
    }
    *ids = std::move(kept);
    return Status::OK();
  }

  static obs::Counter* const batch_pages =
      obs::GlobalMetrics().counter("refine.batch.pages");
  static obs::Counter* const batch_candidates =
      obs::GlobalMetrics().counter("refine.batch.candidates");
  batch_candidates->Increment(ids->size());

  std::optional<PageRef> page;
  PageId pinned = kInvalidPageId;
  for (TupleId id : *ids) {
    PageId pid;
    CDB_RETURN_IF_ERROR(relation.LocateTuple(id, &pid));
    if (!page.has_value() || pid != pinned) {
      page.reset();  // Unpin before the page-granularity checkpoint.
      CDB_RETURN_IF_ERROR(CheckQueryContext(ctx));
      Result<PageRef> ref = [&] {
        CDB_TRACE_SPAN("fetch-page");
        return relation.pager()->Fetch(pid);
      }();
      if (!ref.ok()) return ref.status();
      page.emplace(std::move(ref.value()));
      pinned = pid;
      batch_pages->Increment();
    }
    TupleT tuple;
    CDB_RETURN_IF_ERROR(relation.GetFromPage(*page, id, &tuple));
    CDB_TRACE_SPAN("lp");
    lp_calls->Increment();
    if (pred(tuple)) {
      kept.push_back(id);
      ++filter->refine_accepts;
    } else {
      ++*false_hits;
      ++filter->refine_rejects;
    }
  }
  *ids = std::move(kept);
  return Status::OK();
}

}  // namespace cdb

#endif  // CDB_CONSTRAINT_REFINE_BATCH_H_
