#include "constraint/refine_batch.h"

#include <atomic>
#include <cmath>

#include "geometry/dual.h"
#include "geometry/lp2d.h"

namespace cdb {

namespace {

std::atomic<bool> g_batching_enabled{true};

/// Extremes of f(x, y) = y - slope*x over the corners of `box`. For a tuple
/// whose extension lies inside the box, BOT^t(slope) >= *f_min and
/// TOP^t(slope) <= *f_max — the bounds the early decisions lean on.
inline void BoxSupport(const Rect& box, double slope, double* f_min,
                       double* f_max) {
  double e1 = slope * box.xlo;
  double e2 = slope * box.xhi;
  *f_max = box.yhi - std::min(e1, e2);
  *f_min = box.ylo - std::max(e1, e2);
}

/// Box-provable decision: +1 accept, -1 reject, 0 undecided (run the LP).
/// The box can prove ALL-accepts (the whole box, hence the whole tuple,
/// satisfies the query) and EXIST-rejects (not even the box touches the
/// query) — never EXIST-accepts or ALL-rejects, which depend on the exact
/// tuple shape. The Definitely* margin (kEps * scale, ~1e-9 relative)
/// dominates the ~1e-16 relative rounding between the corner arithmetic
/// and the LP's support values, so every box decision agrees with the
/// decision the scalar LP predicate would have made (DESIGN.md §2h).
inline int DecideFromBox(const Rect& box, SelectionType type,
                         const HalfPlaneQuery& q) {
  double f_min, f_max;
  BoxSupport(box, q.slope, &f_min, &f_max);
  if (type == SelectionType::kAll) {
    if (q.cmp == Cmp::kGE) {
      return DefinitelyLess(q.intercept, f_min) ? 1 : 0;
    }
    return DefinitelyGreater(q.intercept, f_max) ? 1 : 0;
  }
  if (q.cmp == Cmp::kGE) {
    return DefinitelyGreater(q.intercept, f_max) ? -1 : 0;
  }
  return DefinitelyLess(q.intercept, f_min) ? -1 : 0;
}

/// ExactAll/ExactExist (geometry/dual.cc) restructured over a
/// pre-normalized SoA slice, decision-identical to the scalar pair:
///
///   ALL(q(>=))  iff  b <= BOT;   ALL(q(<=))  iff  b >= TOP;
///   EXIST(q(>=)) iff b <= TOP;  EXIST(q(<=)) iff b >= BOT.
///
/// ALL(>=) and EXIST(<=) read BOT (objective (slope, -1), support = -value);
/// the other two read TOP (objective (-slope, 1), support = value). The
/// boxed solve runs once; when its finite support value already decides the
/// query the same way on both recession-probe branches (an unbounded
/// surface makes ALL false and EXIST true regardless of b), the probe — the
/// second, equally expensive solve — is skipped.
bool ExactHalfPlaneSlice(const NormSlice2D& slice, SelectionType type,
                         const HalfPlaneQuery& q) {
  const bool bot_side = (type == SelectionType::kAll) == (q.cmp == Cmp::kGE);
  const double cx = bot_side ? q.slope : -q.slope;
  const double cy = bot_side ? -1.0 : 1.0;
  LpBoxed2D base = SolveBoxedNormalized2D(slice, cx, cy, kLpBox, false);
  if (!base.feasible) return false;  // Unsatisfiable (NaN surface): no match.
  const double support = bot_side ? -base.value : base.value;
  const bool finite_ok = q.cmp == Cmp::kGE
                             ? LessOrEq(q.intercept, support)
                             : GreaterOrEq(q.intercept, support);
  if (type == SelectionType::kAll) {
    if (!finite_ok) return false;  // Rejects whether bounded or not.
    return !UnboundedAbove2D(slice, cx, cy);  // ±inf surface rejects ALL.
  }
  if (finite_ok) return true;  // Accepts whether bounded or not.
  return UnboundedAbove2D(slice, cx, cy);  // ±inf surface accepts EXIST.
}

}  // namespace

void SetRefineBatchingEnabled(bool enabled) {
  g_batching_enabled.store(enabled, std::memory_order_relaxed);
}

bool RefineBatchingEnabled() {
  return g_batching_enabled.load(std::memory_order_relaxed);
}

Status RefineBatch2D(const Relation& relation, SelectionType type,
                     const HalfPlaneQuery& q, obs::Counter* lp_calls,
                     const QueryContext* ctx, std::vector<TupleId>* ids,
                     obs::FilterCounts* filter, uint64_t* false_hits) {
  // Resolve the substrate exactly once for this query. The delegation
  // below passes the resolved value instead of letting RefinePageClustered
  // re-read the toggle: a concurrent SetRefineBatchingEnabled between two
  // reads would otherwise run the "scalar" fallback batched and mix both
  // substrates' booking in one FilterCounts.
  if (!RefineBatchingEnabled()) {
    // Historical scalar reference: per-candidate checkpoint + Get + LP.
    return RefinePageClustered<Relation, GeneralizedTuple>(
        relation, lp_calls, ctx, ids, filter, false_hits,
        [&](const GeneralizedTuple& tuple) {
          return type == SelectionType::kAll
                     ? ExactAll(tuple.constraints(), q)
                     : ExactExist(tuple.constraints(), q);
        },
        /*batched=*/false);
  }

  static obs::Counter* const batch_pages =
      obs::GlobalMetrics().counter("refine.batch.pages");
  static obs::Counter* const batch_candidates =
      obs::GlobalMetrics().counter("refine.batch.candidates");
  static obs::Counter* const bbox_accepts =
      obs::GlobalMetrics().counter("refine.batch.bbox_accepts");
  static obs::Counter* const bbox_rejects =
      obs::GlobalMetrics().counter("refine.batch.bbox_rejects");

  CDB_TRACE_SPAN("refine");
  batch_candidates->Increment(ids->size());
  std::vector<TupleId> kept;
  kept.reserve(ids->size());
  NormSoa2D soa;
  std::optional<PageRef> page;
  PageId pinned = kInvalidPageId;

  for (TupleId id : *ids) {
    // Layer (c): decide box-provable candidates without any fetch or LP.
    Rect box;
    if (relation.CachedBoundingBox(id, &box)) {
      int decision = DecideFromBox(box, type, q);
      if (decision > 0) {
        kept.push_back(id);
        ++filter->early_accepts;
        bbox_accepts->Increment();
        continue;
      }
      if (decision < 0) {
        ++*false_hits;
        ++filter->refine_rejects;
        bbox_rejects->Increment();
        continue;
      }
    }
    // Layer (a): ascending ids cluster into consecutive page runs; pin
    // each run's page once. Checkpoints fire at page granularity.
    PageId pid;
    CDB_RETURN_IF_ERROR(relation.LocateTuple(id, &pid));
    if (!page.has_value() || pid != pinned) {
      page.reset();
      CDB_RETURN_IF_ERROR(CheckQueryContext(ctx));
      Result<PageRef> ref = [&] {
        CDB_TRACE_SPAN("fetch-page");
        return relation.pager()->Fetch(pid);
      }();
      if (!ref.ok()) return ref.status();
      page.emplace(std::move(ref.value()));
      pinned = pid;
      batch_pages->Increment();
    }
    GeneralizedTuple tuple;
    CDB_RETURN_IF_ERROR(relation.GetFromPage(*page, id, &tuple));
    // Layer (b): normalize into the reused SoA buffers and decide via the
    // flat-loop kernels.
    CDB_TRACE_SPAN("lp");
    lp_calls->Increment();
    soa.clear();
    AppendNormalized2D(tuple.constraints(), &soa);
    NormSlice2D slice{&soa, 0, soa.size()};
    if (ExactHalfPlaneSlice(slice, type, q)) {
      kept.push_back(id);
      ++filter->refine_accepts;
    } else {
      ++*false_hits;
      ++filter->refine_rejects;
    }
  }
  *ids = std::move(kept);
  return Status::OK();
}

}  // namespace cdb
