// Generalized tuples — finite representations of (possibly infinite) sets of
// points (Section 2 of the paper).

#ifndef CDB_CONSTRAINT_GENERALIZED_TUPLE_H_
#define CDB_CONSTRAINT_GENERALIZED_TUPLE_H_

#include <cstdint>
#include <vector>

#include "geometry/dual.h"
#include "geometry/linear_constraint.h"
#include "geometry/polyhedron2d.h"

namespace cdb {

/// Identifier of a tuple within a relation.
using TupleId = uint32_t;

/// A 2-D generalized tuple: a conjunction of linear constraints whose
/// extension is a convex (possibly unbounded, possibly empty) polyhedron.
class GeneralizedTuple {
 public:
  GeneralizedTuple() = default;
  explicit GeneralizedTuple(std::vector<Constraint2D> constraints)
      : constraints_(std::move(constraints)) {}

  /// Adds `a*x + b*y + c θ 0`. An equality is modelled by calling this twice
  /// with kLE and kGE (the paper's expansion of '=').
  void Add(double a, double b, double c, Cmp cmp) {
    constraints_.emplace_back(a, b, c, cmp);
  }

  const std::vector<Constraint2D>& constraints() const { return constraints_; }
  size_t size() const { return constraints_.size(); }
  bool empty() const { return constraints_.empty(); }

  /// True when the extension is non-empty.
  bool IsSatisfiable() const;

  /// TOP^P at `slope` (+inf when unbounded above; NaN when unsatisfiable).
  double Top(double slope) const { return TopValue(constraints_, slope); }

  /// BOT^P at `slope` (-inf when unbounded below; NaN when unsatisfiable).
  double Bot(double slope) const { return BotValue(constraints_, slope); }

  /// V-representation of the extension.
  Polyhedron2D Polyhedron() const {
    return Polyhedron2D::FromConstraints(constraints_);
  }

  /// Minimal bounding rectangle; false when unbounded or unsatisfiable.
  bool GetBoundingRect(Rect* out) const {
    return BoundingRect(constraints_, out);
  }

 private:
  std::vector<Constraint2D> constraints_;
};

/// d-dimensional generalized tuple (used by the Section 4.4 extension).
class GeneralizedTupleD {
 public:
  GeneralizedTupleD() = default;
  GeneralizedTupleD(size_t dim, std::vector<ConstraintD> constraints)
      : dim_(dim), constraints_(std::move(constraints)) {}

  size_t dim() const { return dim_; }
  const std::vector<ConstraintD>& constraints() const { return constraints_; }

 private:
  size_t dim_ = 0;
  std::vector<ConstraintD> constraints_;
};

}  // namespace cdb

#endif  // CDB_CONSTRAINT_GENERALIZED_TUPLE_H_
