#include "constraint/parser.h"

#include <cctype>
#include <cmath>
#include <sstream>

namespace cdb {

namespace {

// Linear expression a*x + b*y + c accumulated during parsing.
struct LinExpr {
  double a = 0.0, b = 0.0, c = 0.0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& s) : s_(s) {}

  void SkipSpace() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= s_.size();
  }

  char Peek() {
    SkipSpace();
    return pos_ < s_.size() ? s_[pos_] : '\0';
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  /// Consumes the keyword "and" (case-insensitive) if present.
  bool ConsumeAnd() {
    SkipSpace();
    if (pos_ + 3 <= s_.size() &&
        std::tolower(s_[pos_]) == 'a' && std::tolower(s_[pos_ + 1]) == 'n' &&
        std::tolower(s_[pos_ + 2]) == 'd') {
      pos_ += 3;
      return true;
    }
    return false;
  }

  /// Parses a comparison operator; returns "" if absent.
  std::string ConsumeCmp() {
    SkipSpace();
    if (pos_ >= s_.size()) return "";
    char c = s_[pos_];
    if (c == '<' || c == '>') {
      ++pos_;
      if (pos_ < s_.size() && s_[pos_] == '=') {
        ++pos_;
        return std::string(1, c) + "=";
      }
      return std::string(1, c);
    }
    if (c == '=') {
      ++pos_;
      return "=";
    }
    return "";
  }

  bool ConsumeNumber(double* out) {
    SkipSpace();
    size_t start = pos_;
    size_t p = pos_;
    while (p < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[p])) || s_[p] == '.')) {
      ++p;
    }
    if (p == start) return false;
    try {
      size_t used = 0;
      *out = std::stod(s_.substr(start, p - start), &used);
      pos_ = start + used;
      return used > 0;
    } catch (...) {
      return false;
    }
  }

  size_t pos() const { return pos_; }
  std::string Rest() const { return s_.substr(std::min(pos_, s_.size())); }

 private:
  const std::string& s_;
  size_t pos_ = 0;
};

// term := [number] ['*'] [var] | var
// expr := ['-'|'+'] term (('+'|'-') term)*
Status ParseExpr(Lexer* lex, LinExpr* out) {
  *out = LinExpr();
  double sign = 1.0;
  bool first = true;
  while (true) {
    if (lex->Consume('-')) {
      sign = -sign;
      continue;
    }
    if (lex->Consume('+')) continue;

    double coeff = 1.0;
    bool have_number = lex->ConsumeNumber(&coeff);
    lex->Consume('*');  // Optional explicit multiplication.
    char v = lex->Peek();
    if (v == 'x' || v == 'X') {
      lex->Consume(v);
      out->a += sign * coeff;
    } else if (v == 'y' || v == 'Y') {
      lex->Consume(v);
      out->b += sign * coeff;
    } else if (have_number) {
      out->c += sign * coeff;
    } else {
      return Status::InvalidArgument(
          "expected a term near '" + lex->Rest().substr(0, 12) + "'");
    }
    first = false;
    sign = 1.0;

    char next = lex->Peek();
    if (next == '+' || next == '-') continue;
    break;
  }
  if (first) return Status::InvalidArgument("empty expression");
  return Status::OK();
}

// constraint := expr cmp expr
Status ParseConstraint(Lexer* lex, GeneralizedTuple* out) {
  LinExpr lhs, rhs;
  CDB_RETURN_IF_ERROR(ParseExpr(lex, &lhs));
  std::string op = lex->ConsumeCmp();
  if (op.empty()) {
    return Status::InvalidArgument("expected comparison near '" +
                                   lex->Rest().substr(0, 12) + "'");
  }
  CDB_RETURN_IF_ERROR(ParseExpr(lex, &rhs));
  // Normalize to (lhs - rhs) θ 0.
  double a = lhs.a - rhs.a, b = lhs.b - rhs.b, c = lhs.c - rhs.c;
  if (op == "<" || op == "<=") {
    out->Add(a, b, c, Cmp::kLE);
  } else if (op == ">" || op == ">=") {
    out->Add(a, b, c, Cmp::kGE);
  } else {  // '=' expands into the conjunction of both closures.
    out->Add(a, b, c, Cmp::kLE);
    out->Add(a, b, c, Cmp::kGE);
  }
  return Status::OK();
}

}  // namespace

Status ParseGeneralizedTuple(const std::string& text, GeneralizedTuple* out) {
  *out = GeneralizedTuple();
  Lexer lex(text);
  if (lex.AtEnd()) return Status::InvalidArgument("empty tuple text");
  while (true) {
    CDB_RETURN_IF_ERROR(ParseConstraint(&lex, out));
    if (lex.AtEnd()) return Status::OK();
    if (lex.Consume(',') || lex.ConsumeAnd()) continue;
    return Status::InvalidArgument("expected ',' or 'and' near '" +
                                   lex.Rest().substr(0, 12) + "'");
  }
}

Status ParseHalfPlaneQuery(const std::string& text, HalfPlaneQuery* out) {
  GeneralizedTuple tuple;
  CDB_RETURN_IF_ERROR(ParseGeneralizedTuple(text, &tuple));
  // Accept a single non-vertical constraint; '=' (two constraints) is not a
  // half-plane.
  if (tuple.size() != 1) {
    return Status::InvalidArgument("query must be a single inequality");
  }
  const Constraint2D& c = tuple.constraints()[0];
  if (ApproxZero(c.b)) {
    return Status::InvalidArgument("query half-plane must not be vertical");
  }
  // a*x + b*y + c θ 0  ->  y θ' (-a/b)x + (-c/b), flipped when b < 0.
  double slope = -c.a / c.b;
  double intercept = -c.c / c.b;
  Cmp cmp = c.cmp;
  if (c.b < 0) cmp = Negate(cmp);
  *out = HalfPlaneQuery(slope, intercept, cmp);
  return Status::OK();
}

std::string FormatGeneralizedTuple(const GeneralizedTuple& tuple) {
  std::ostringstream os;
  bool first = true;
  for (const Constraint2D& c : tuple.constraints()) {
    if (!first) os << ", ";
    first = false;
    bool any = false;
    if (!ApproxZero(c.a)) {
      os << c.a << "x";
      any = true;
    }
    if (!ApproxZero(c.b)) {
      if (any && c.b > 0) os << " + ";
      if (c.b < 0) os << (any ? " - " : "-");
      os << std::fabs(c.b) << "y";
      any = true;
    }
    if (!ApproxZero(c.c) || !any) {
      if (any && c.c > 0) os << " + ";
      if (c.c < 0) os << (any ? " - " : "-");
      os << std::fabs(c.c);
    }
    os << (c.cmp == Cmp::kLE ? " <= 0" : " >= 0");
  }
  return os.str();
}

}  // namespace cdb
