#include "constraint/relation_d.h"

#include <cstring>

namespace cdb {

namespace {

struct PageHeader {
  PageId next;
  PageId prev;
  uint16_t used;
  uint16_t live_records;
};

constexpr size_t kHeaderSize = sizeof(PageHeader);
constexpr uint8_t kLiveFlag = 1;

// Record: id u32 | m u16 | flags u8 | per-constraint: dim*f64 + f64 + u8.
constexpr size_t kRecordFixed = 7;

size_t PerConstraint(size_t dim) { return dim * 8 + 8 + 1; }
size_t RecordLength(size_t dim, size_t m) {
  return kRecordFixed + m * PerConstraint(dim);
}

void ReadHeader(const char* p, PageHeader* h) { std::memcpy(h, p, sizeof(*h)); }
void WriteHeader(char* p, const PageHeader& h) {
  std::memcpy(p, &h, sizeof(h));
}

void SerializeRecord(char* dst, TupleId id, const GeneralizedTupleD& tuple,
                     uint8_t flags) {
  uint16_t m = static_cast<uint16_t>(tuple.constraints().size());
  std::memcpy(dst, &id, 4);
  std::memcpy(dst + 4, &m, 2);
  dst[6] = static_cast<char>(flags);
  char* p = dst + kRecordFixed;
  for (const ConstraintD& c : tuple.constraints()) {
    for (double coeff : c.a) {
      std::memcpy(p, &coeff, 8);
      p += 8;
    }
    std::memcpy(p, &c.c, 8);
    p += 8;
    *p++ = static_cast<char>(c.cmp == Cmp::kLE ? 0 : 1);
  }
}

void DeserializeRecord(const char* src, size_t dim, TupleId* id,
                       uint8_t* flags, GeneralizedTupleD* tuple) {
  uint16_t m;
  std::memcpy(id, src, 4);
  std::memcpy(&m, src + 4, 2);
  *flags = static_cast<uint8_t>(src[6]);
  std::vector<ConstraintD> cons;
  cons.reserve(m);
  const char* p = src + kRecordFixed;
  for (uint16_t i = 0; i < m; ++i) {
    ConstraintD c;
    c.a.resize(dim);
    for (size_t t = 0; t < dim; ++t) {
      std::memcpy(&c.a[t], p, 8);
      p += 8;
    }
    std::memcpy(&c.c, p, 8);
    p += 8;
    c.cmp = *p++ == 0 ? Cmp::kLE : Cmp::kGE;
    cons.push_back(std::move(c));
  }
  *tuple = GeneralizedTupleD(dim, std::move(cons));
}

}  // namespace

Status RelationD::Open(Pager* pager, size_t dim, PageId root_page,
                       std::unique_ptr<RelationD>* out) {
  if (dim < 2) return Status::InvalidArgument("dimension must be >= 2");
  std::unique_ptr<RelationD> rel(new RelationD(pager, dim));
  if (root_page == kInvalidPageId) {
    Result<PageId> id = pager->Allocate();
    if (!id.ok()) return id.status();
    rel->root_page_ = rel->tail_page_ = id.value();
    Result<PageRef> ref = pager->Fetch(id.value());
    if (!ref.ok()) return ref.status();
    PageHeader h{kInvalidPageId, kInvalidPageId,
                 static_cast<uint16_t>(kHeaderSize), 0};
    WriteHeader(ref.value().data(), h);
    ref.value().MarkDirty();
  } else {
    rel->root_page_ = root_page;
    CDB_RETURN_IF_ERROR(rel->RebuildDirectory());
  }
  *out = std::move(rel);
  return Status::OK();
}

Status RelationD::RebuildDirectory() {
  PageId page = root_page_;
  PageId prev = kInvalidPageId;
  while (page != kInvalidPageId) {
    Result<PageRef> ref = pager_->Fetch(page);
    if (!ref.ok()) return ref.status();
    PageHeader h;
    ReadHeader(ref.value().data(), &h);
    size_t off = kHeaderSize;
    while (off < h.used) {
      const char* rec = ref.value().data() + off;
      TupleId id;
      std::memcpy(&id, rec, 4);
      uint16_t m;
      std::memcpy(&m, rec + 4, 2);
      uint8_t flags = static_cast<uint8_t>(rec[6]);
      if (directory_.size() <= id) directory_.resize(id + 1);
      directory_[id] = {page, static_cast<uint16_t>(off),
                        (flags & kLiveFlag) != 0};
      if (flags & kLiveFlag) ++live_count_;
      off += RecordLength(dim_, m);
    }
    prev = page;
    page = h.next;
  }
  tail_page_ = prev == kInvalidPageId ? root_page_ : prev;
  return Status::OK();
}

Result<TupleId> RelationD::Insert(const GeneralizedTupleD& tuple) {
  if (tuple.dim() != dim_) {
    return Status::InvalidArgument("tuple dimension mismatch");
  }
  if (tuple.constraints().empty()) {
    return Status::InvalidArgument("tuple must have at least one constraint");
  }
  size_t len = RecordLength(dim_, tuple.constraints().size());
  if (len + kHeaderSize > pager_->page_size()) {
    return Status::InvalidArgument("tuple too large for a page");
  }
  TupleId id = static_cast<TupleId>(directory_.size());

  Result<PageRef> tail = pager_->Fetch(tail_page_);
  if (!tail.ok()) return tail.status();
  PageHeader h;
  ReadHeader(tail.value().data(), &h);

  if (h.used + len > pager_->page_size()) {
    Result<PageId> fresh = pager_->Allocate();
    if (!fresh.ok()) return fresh.status();
    Result<PageRef> fresh_ref = pager_->Fetch(fresh.value());
    if (!fresh_ref.ok()) return fresh_ref.status();
    PageHeader nh{kInvalidPageId, tail_page_,
                  static_cast<uint16_t>(kHeaderSize), 0};
    WriteHeader(fresh_ref.value().data(), nh);
    fresh_ref.value().MarkDirty();
    h.next = fresh.value();
    WriteHeader(tail.value().data(), h);
    tail.value().MarkDirty();
    tail_page_ = fresh.value();
    tail = std::move(fresh_ref);
    h = nh;
  }

  SerializeRecord(tail.value().data() + h.used, id, tuple, kLiveFlag);
  directory_.push_back({tail_page_, h.used, true});
  h.used = static_cast<uint16_t>(h.used + len);
  ++h.live_records;
  WriteHeader(tail.value().data(), h);
  tail.value().MarkDirty();
  ++live_count_;
  return id;
}

Status RelationD::Get(TupleId id, GeneralizedTupleD* out) const {
  if (id >= directory_.size() || !directory_[id].live) {
    return Status::NotFound("tuple " + std::to_string(id));
  }
  const Location& loc = directory_[id];
  Result<PageRef> ref = pager_->Fetch(loc.page);
  if (!ref.ok()) return ref.status();
  TupleId stored;
  uint8_t flags;
  DeserializeRecord(ref.value().data() + loc.offset, dim_, &stored, &flags,
                    out);
  if (stored != id || !(flags & kLiveFlag)) {
    return Status::Corruption("directory/page mismatch for tuple " +
                              std::to_string(id));
  }
  return Status::OK();
}

Status RelationD::LocateTuple(TupleId id, PageId* page) const {
  if (id >= directory_.size() || !directory_[id].live) {
    return Status::NotFound("tuple " + std::to_string(id));
  }
  *page = directory_[id].page;
  return Status::OK();
}

Status RelationD::GetFromPage(const PageRef& page, TupleId id,
                              GeneralizedTupleD* out) const {
  const Location& loc = directory_[id];
  TupleId stored;
  uint8_t flags;
  DeserializeRecord(page.data() + loc.offset, dim_, &stored, &flags, out);
  if (stored != id || !(flags & kLiveFlag)) {
    return Status::Corruption("directory/page mismatch for tuple " +
                              std::to_string(id));
  }
  return Status::OK();
}

Status RelationD::Delete(TupleId id) {
  if (id >= directory_.size() || !directory_[id].live) {
    return Status::NotFound("tuple " + std::to_string(id));
  }
  Location& loc = directory_[id];
  Result<PageRef> ref = pager_->Fetch(loc.page);
  if (!ref.ok()) return ref.status();
  ref.value().data()[loc.offset + 6] = 0;
  PageHeader h;
  ReadHeader(ref.value().data(), &h);
  --h.live_records;
  WriteHeader(ref.value().data(), h);
  ref.value().MarkDirty();
  loc.live = false;
  --live_count_;
  return Status::OK();
}

Status RelationD::ForEach(
    const std::function<Status(TupleId, const GeneralizedTupleD&)>& fn)
    const {
  for (TupleId id = 0; id < directory_.size(); ++id) {
    if (!directory_[id].live) continue;
    GeneralizedTupleD tuple;
    CDB_RETURN_IF_ERROR(Get(id, &tuple));
    CDB_RETURN_IF_ERROR(fn(id, tuple));
  }
  return Status::OK();
}

}  // namespace cdb
