// Naive exact evaluation of ALL / EXIST selections by sequential scan.
//
// Serves two roles: the ground truth every index implementation is tested
// against, and the "no index" baseline in benchmarks. Each tuple costs one
// page fetch (through Relation::Get) plus two LP evaluations.

#ifndef CDB_CONSTRAINT_NAIVE_EVAL_H_
#define CDB_CONSTRAINT_NAIVE_EVAL_H_

#include <vector>

#include "common/result.h"
#include "constraint/relation.h"

namespace cdb {

/// Query type per Section 2 of the paper.
enum class SelectionType { kAll, kExist };

/// Exact ALL(q, r) or EXIST(q, r) by scanning the relation. Results are in
/// ascending tuple-id order.
Result<std::vector<TupleId>> NaiveSelect(const Relation& relation,
                                         SelectionType type,
                                         const HalfPlaneQuery& query);

/// Vertical half-plane query: x θ boundary (paper footnote 4; not
/// expressible as y θ a*x + b).
struct VerticalQuery {
  double boundary = 0.0;
  Cmp cmp = Cmp::kGE;  // kGE: x >= boundary; kLE: x <= boundary.
};

/// Exact vertical ALL/EXIST predicates on one tuple, via the x-extent
/// support values (min/max of x over the extension, ±inf when unbounded).
bool ExactAllVertical(const std::vector<Constraint2D>& constraints,
                      const VerticalQuery& q);
bool ExactExistVertical(const std::vector<Constraint2D>& constraints,
                        const VerticalQuery& q);

/// Exact vertical selection by scanning the relation.
Result<std::vector<TupleId>> NaiveSelectVertical(const Relation& relation,
                                                 SelectionType type,
                                                 const VerticalQuery& query);

}  // namespace cdb

#endif  // CDB_CONSTRAINT_NAIVE_EVAL_H_
