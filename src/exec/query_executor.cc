#include "exec/query_executor.h"

#include <algorithm>
#include <memory>

#include "storage/pager.h"

namespace cdb {
namespace exec {

Status FirstError(const std::vector<BatchItemResult>& results) {
  for (const BatchItemResult& r : results) {
    if (!r.status.ok()) return r.status;
  }
  return Status::OK();
}

QueryExecutor::QueryExecutor(size_t threads) {
  size_t n = threads == 0 ? 1 : threads;
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryExecutor::~QueryExecutor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void QueryExecutor::WorkerLoop() {
  uint64_t seen_generation = 0;
  for (;;) {
    Batch* batch = nullptr;
    std::vector<Pager*> pagers;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
      batch = current_;
      pagers = session_pagers_;
    }
    {
      // One read session per pager for this worker's whole share of the
      // batch; destruction (reverse order, RAII) merges the thread's
      // IoStats delta back into each pager. Under a live writer
      // (per_item_sessions) the sessions instead scope each item, so the
      // writer's publish gate only drains in-flight queries.
      std::vector<std::unique_ptr<PagerReadSession>> sessions;
      if (!batch->per_item_sessions) {
        sessions.reserve(pagers.size());
        for (Pager* p : pagers) {
          sessions.push_back(std::make_unique<PagerReadSession>(p));
        }
      }
      for (;;) {
        size_t i = batch->next.fetch_add(1, std::memory_order_relaxed);
        if (i >= batch->n) break;
        if (batch->per_item_sessions) {
          std::vector<std::unique_ptr<PagerReadSession>> item_sessions;
          item_sessions.reserve(pagers.size());
          for (Pager* p : pagers) {
            item_sessions.push_back(std::make_unique<PagerReadSession>(p));
          }
          (*batch->job)(i);
        } else {
          (*batch->job)(i);
        }
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (++batch->finished_workers == workers_.size()) {
        done_cv_.notify_all();
      }
    }
  }
}

Status QueryExecutor::RunSharded(std::vector<Pager*> pagers, size_t n,
                                 const std::function<void(size_t)>& job) {
  std::sort(pagers.begin(), pagers.end());
  pagers.erase(std::unique(pagers.begin(), pagers.end()), pagers.end());
  pagers.erase(std::remove(pagers.begin(), pagers.end(), nullptr),
               pagers.end());

  // Mode switch; on partial failure, restore the pagers already switched.
  for (size_t i = 0; i < pagers.size(); ++i) {
    Status st = pagers[i]->BeginConcurrentReads();
    if (!st.ok()) {
      for (size_t j = 0; j < i; ++j) {
        pagers[j]->EndConcurrentReads().ok();
      }
      return st;
    }
  }

  Batch batch;
  batch.n = n;
  batch.job = &job;
  {
    std::lock_guard<std::mutex> lock(mu_);
    current_ = &batch;
    session_pagers_ = pagers;
    ++generation_;
  }
  work_cv_.notify_all();
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock,
                  [&] { return batch.finished_workers == workers_.size(); });
    current_ = nullptr;
    session_pagers_.clear();
  }

  Status first_error;
  for (Pager* p : pagers) {
    Status st = p->EndConcurrentReads();
    if (!st.ok() && first_error.ok()) first_error = st;
  }
  return first_error;
}

Status QueryExecutor::RunWithWriter(std::vector<Pager*> pagers, size_t n,
                                    const std::function<void(size_t)>& job,
                                    const std::function<Status()>& writer) {
  std::sort(pagers.begin(), pagers.end());
  pagers.erase(std::unique(pagers.begin(), pagers.end()), pagers.end());
  pagers.erase(std::remove(pagers.begin(), pagers.end(), nullptr),
               pagers.end());

  // Single-writer mode switch; the calling thread (this one) becomes the
  // writer of every pager. On partial failure, restore the ones already
  // switched.
  for (size_t i = 0; i < pagers.size(); ++i) {
    Status st = pagers[i]->BeginConcurrentReads(/*single_writer=*/true);
    if (!st.ok()) {
      for (size_t j = 0; j < i; ++j) {
        pagers[j]->EndConcurrentReads().ok();
      }
      return st;
    }
  }

  Batch batch;
  batch.n = n;
  batch.job = &job;
  batch.per_item_sessions = true;
  {
    std::lock_guard<std::mutex> lock(mu_);
    current_ = &batch;
    session_pagers_ = pagers;
    ++generation_;
  }
  work_cv_.notify_all();

  // The writer runs here, concurrent with the workers, mutating through
  // the journal and publishing at its own cadence.
  Status writer_status = writer();

  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock,
                  [&] { return batch.finished_workers == workers_.size(); });
    current_ = nullptr;
    session_pagers_.clear();
  }

  // EndConcurrentReads publishes any remaining writer state (it must run
  // on the writer thread — which is this one).
  Status first_error = writer_status;
  for (Pager* p : pagers) {
    Status st = p->EndConcurrentReads();
    if (!st.ok() && first_error.ok()) first_error = st;
  }
  return first_error;
}

Status QueryExecutor::RunBatchWithWriter(DualIndex* index,
                                         const std::vector<BatchQuery>& batch,
                                         std::vector<BatchItemResult>* results,
                                         const std::function<Status()>& writer) {
  results->clear();
  results->resize(batch.size());
  auto job = [&](size_t i) {
    const BatchQuery& q = batch[i];
    BatchItemResult& out = (*results)[i];
    Result<std::vector<TupleId>> r =
        index->Select(q.type, q.query, q.method, &out.stats);
    if (r.ok()) {
      out.ids = std::move(r.value());
    } else {
      out.status = r.status();
    }
  };
  return RunWithWriter({index->pager(), index->relation()->pager()},
                       batch.size(), job, writer);
}

Status QueryExecutor::RunBatch(DualIndex* index,
                               const std::vector<BatchQuery>& batch,
                               std::vector<BatchItemResult>* results) {
  results->clear();
  results->resize(batch.size());
  auto job = [&](size_t i) {
    const BatchQuery& q = batch[i];
    BatchItemResult& out = (*results)[i];
    Result<std::vector<TupleId>> r =
        index->Select(q.type, q.query, q.method, &out.stats);
    if (r.ok()) {
      out.ids = std::move(r.value());
    } else {
      out.status = r.status();
    }
  };
  return RunSharded({index->pager(), index->relation()->pager()},
                    batch.size(), job);
}

Status QueryExecutor::RunBatch(RPlusTree* tree, Relation* relation,
                               const std::vector<BatchQuery>& batch,
                               std::vector<BatchItemResult>* results) {
  results->clear();
  results->resize(batch.size());
  auto job = [&](size_t i) {
    const BatchQuery& q = batch[i];
    BatchItemResult& out = (*results)[i];
    Result<std::vector<TupleId>> r =
        RTreeSelect(tree, relation, q.type, q.query, &out.stats);
    if (r.ok()) {
      out.ids = std::move(r.value());
    } else {
      out.status = r.status();
    }
  };
  return RunSharded({tree->pager(), relation->pager()}, batch.size(), job);
}

Status QueryExecutor::RunBatch(DDimDualIndex* index,
                               const std::vector<BatchQueryD>& batch,
                               std::vector<BatchItemResult>* results) {
  results->clear();
  results->resize(batch.size());
  auto job = [&](size_t i) {
    const BatchQueryD& q = batch[i];
    BatchItemResult& out = (*results)[i];
    Result<std::vector<TupleId>> r =
        index->Select(q.type, q.query, q.method, &out.stats);
    if (r.ok()) {
      out.ids = std::move(r.value());
    } else {
      out.status = r.status();
    }
  };
  return RunSharded({index->pager(), index->relation()->pager()},
                    batch.size(), job);
}

}  // namespace exec
}  // namespace cdb
