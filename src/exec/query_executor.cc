#include "exec/query_executor.h"

#include <algorithm>
#include <cassert>
#include <memory>

#include "obs/metrics.h"
#include "storage/pager.h"

namespace cdb {
namespace exec {

Status FirstError(const std::vector<BatchItemResult>& results) {
  for (const BatchItemResult& r : results) {
    if (!r.status.ok()) return r.status;
  }
  return Status::OK();
}

QueryExecutor::QueryExecutor(size_t threads) {
  size_t n = threads == 0 ? 1 : threads;
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryExecutor::~QueryExecutor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void QueryExecutor::WorkerLoop() {
  uint64_t seen_generation = 0;
  for (;;) {
    Batch* batch = nullptr;
    std::vector<Pager*> pagers;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
      batch = current_;
      pagers = session_pagers_;
    }
    {
      // One read session per pager for this worker's whole share of the
      // batch; destruction (reverse order, RAII) merges the thread's
      // IoStats delta back into each pager. Under a live writer
      // (per_item_sessions) the sessions instead scope each item, so the
      // writer's publish gate only drains in-flight queries.
      std::vector<std::unique_ptr<PagerReadSession>> sessions;
      if (!batch->per_item_sessions) {
        sessions.reserve(pagers.size());
        for (Pager* p : pagers) {
          sessions.push_back(std::make_unique<PagerReadSession>(p));
        }
      }
      for (;;) {
        size_t i = batch->next.fetch_add(1, std::memory_order_relaxed);
        if (i >= batch->n) break;
        // Latency probes (ISSUE 5): queue wait = submit to pickup, service
        // = pickup to job return (per-item session open/close included —
        // that cost is part of serving the query). clock == nullptr means
        // neither observability nor the overload ladder is on and no clock
        // is read at all; the recorders may be null individually when the
        // clock serves only the ladder.
        uint64_t picked_ns = 0;
        uint64_t wait_ns = 0;
        if (batch->clock != nullptr) {
          picked_ns = batch->clock->NowNanos();
          wait_ns = picked_ns - batch->submit_ns;
          if (batch->queue != nullptr) batch->queue->RecordNanos(wait_ns);
        }
        // Overload ladder (ISSUE 7): shed outranks degrade. A shed query
        // is completed by on_shed (kUnavailable) without being served, so
        // it records queue wait but no service time.
        if (batch->shed_wait_ns > 0 && wait_ns >= batch->shed_wait_ns) {
          (*batch->on_shed)(i);
          continue;
        }
        if (batch->degrade_wait_ns > 0 && wait_ns >= batch->degrade_wait_ns) {
          (*batch->on_degrade)(i);
        }
        if (batch->per_item_sessions) {
          std::vector<std::unique_ptr<PagerReadSession>> item_sessions;
          item_sessions.reserve(pagers.size());
          for (Pager* p : pagers) {
            item_sessions.push_back(std::make_unique<PagerReadSession>(p));
          }
          (*batch->job)(i);
        } else {
          (*batch->job)(i);
        }
        if (batch->service != nullptr) {
          batch->service->RecordNanos(batch->clock->NowNanos() - picked_ns);
        }
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (++batch->finished_workers == workers_.size()) {
        done_cv_.notify_all();
      }
    }
  }
}

Status QueryExecutor::Execute(std::vector<Pager*> pagers, size_t n,
                              const std::function<void(size_t)>& job,
                              const std::function<Status()>* writer,
                              const BatchObservability* bobs, BatchResult* out,
                              const std::function<void(size_t)>* on_degrade,
                              const std::function<void(size_t)>* on_shed) {
  std::sort(pagers.begin(), pagers.end());
  pagers.erase(std::unique(pagers.begin(), pagers.end()), pagers.end());
  pagers.erase(std::remove(pagers.begin(), pagers.end(), nullptr),
               pagers.end());

  // Mode switch; with a writer, the calling thread (this one) becomes the
  // single writer of every pager. On partial failure, restore the pagers
  // already switched.
  const bool single_writer = writer != nullptr;
  for (size_t i = 0; i < pagers.size(); ++i) {
    Status st = pagers[i]->BeginConcurrentReads(single_writer);
    if (!st.ok()) {
      for (size_t j = 0; j < i; ++j) {
        pagers[j]->EndConcurrentReads().ok();
      }
      return st;
    }
  }

  // Per-batch latency recorders live on this frame; workers reference
  // them only between dispatch and the done_cv_ handshake below.
  const bool record_latency =
      bobs != nullptr && bobs->record_latency && out != nullptr;
  obs::LatencyRecorder service;
  obs::LatencyRecorder queue_wait;

  const bool ladder = bobs != nullptr && bobs->overload.ladder_enabled() &&
                      on_shed != nullptr && on_degrade != nullptr;

  Batch batch;
  batch.n = n;
  batch.job = &job;
  batch.per_item_sessions = single_writer;
  if (record_latency) {
    batch.service = &service;
    batch.queue = &queue_wait;
  }
  if (ladder) {
    batch.degrade_wait_ns = bobs->overload.degrade_queue_wait_ns;
    batch.shed_wait_ns = bobs->overload.shed_queue_wait_ns;
    batch.on_degrade = on_degrade;
    batch.on_shed = on_shed;
  }
  if (record_latency || ladder) {
    batch.clock =
        bobs->clock != nullptr ? bobs->clock : obs::DefaultClock();
    batch.submit_ns = batch.clock->NowNanos();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    current_ = &batch;
    session_pagers_ = pagers;
    ++generation_;
  }
  work_cv_.notify_all();

  // The writer (if any) runs here, concurrent with the workers, mutating
  // through the journal and publishing at its own cadence.
  Status writer_status;
  if (writer != nullptr) writer_status = (*writer)();

  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock,
                  [&] { return batch.finished_workers == workers_.size(); });
    current_ = nullptr;
    session_pagers_.clear();
  }

  if (record_latency) {
    out->service = service.Snapshot();
    out->queue_wait = queue_wait.Snapshot();
    obs::ExportLatencyMetrics(service, &obs::GlobalMetrics(),
                              "exec.query.latency");
    obs::ExportLatencyMetrics(queue_wait, &obs::GlobalMetrics(),
                              "exec.queue.wait");
  }

  // EndConcurrentReads publishes any remaining writer state (it must run
  // on the writer thread — which is this one).
  Status first_error = writer_status;
  for (Pager* p : pagers) {
    Status st = p->EndConcurrentReads();
    if (!st.ok() && first_error.ok()) first_error = st;
  }
  return first_error;
}

Status QueryExecutor::RunSharded(std::vector<Pager*> pagers, size_t n,
                                 const std::function<void(size_t)>& job) {
  return Execute(std::move(pagers), n, job, /*writer=*/nullptr,
                 /*bobs=*/nullptr, /*out=*/nullptr);
}

Status QueryExecutor::RunWithWriter(std::vector<Pager*> pagers, size_t n,
                                    const std::function<void(size_t)>& job,
                                    const std::function<Status()>& writer) {
  return Execute(std::move(pagers), n, job, &writer, /*bobs=*/nullptr,
                 /*out=*/nullptr);
}

namespace {

// Tallies the sampled traces of an instrumented batch: every attached
// ExplainProfile must re-prove the self==total balance invariant (the
// whole point of sampling under concurrency is that the attribution stays
// exact; a mismatch is a bug, so debug builds assert) and, since the query
// paths fill it, the filter-precision phase accounting must balance too
// (candidates = dedup + early + accepts + rejects, results <= candidates).
void TallySampledTraces(BatchResult* out) {
  for (const BatchItemResult& item : out->items) {
    if (item.profile == nullptr) continue;
    ++out->sampled_traces;
    const bool balanced =
        item.profile->SumsBalance() && item.profile->filter.Balances();
    assert(balanced && "sampled ExplainProfile failed balance invariants");
    if (balanced) ++out->balanced_traces;
  }
}

}  // namespace

Status QueryExecutor::RunInstrumented(DualIndex* index,
                                      const std::vector<BatchQuery>& batch,
                                      const BatchObservability& bobs,
                                      BatchResult* out,
                                      const std::function<Status()>* writer) {
  out->items.clear();
  out->items.resize(batch.size());
  out->sampled_traces = 0;
  out->balanced_traces = 0;
  out->shed = 0;
  out->degraded = 0;
  static obs::Counter* const shed_counter =
      obs::GlobalMetrics().counter("exec.shed.count");

  // Bounded admission (ISSUE 7): queries past the capacity are rejected
  // here, before dispatch, so the pool's queue never grows past the bound.
  // Their items still occupy their slots (items[i] <-> batch[i]).
  size_t admitted = batch.size();
  const size_t capacity = bobs.overload.admission_capacity;
  if (capacity > 0 && admitted > capacity) {
    admitted = capacity;
    for (size_t i = admitted; i < batch.size(); ++i) {
      out->items[i].status =
          Status::Unavailable("query shed: admission queue full");
    }
    const uint64_t rejected = batch.size() - admitted;
    out->shed += rejected;
    shed_counter->Increment(rejected);
  }

  obs::TraceSampler sampler(bobs.trace_sample_every, bobs.trace_sample_seed);
  // Ladder bookkeeping. degraded_flags[i] is written by on_degrade and read
  // by job(i) on the same worker thread immediately after, so plain bytes
  // suffice; the counters are cross-thread and atomic.
  std::vector<char> degraded_flags(batch.size(), 0);
  std::atomic<uint64_t> shed_count{0};
  std::atomic<uint64_t> degraded_count{0};
  std::function<void(size_t)> on_shed = [&](size_t i) {
    out->items[i].status =
        Status::Unavailable("query shed: queue wait over threshold");
    shed_count.fetch_add(1, std::memory_order_relaxed);
    shed_counter->Increment();
  };
  std::function<void(size_t)> on_degrade = [&](size_t i) {
    degraded_flags[i] = 1;
    degraded_count.fetch_add(1, std::memory_order_relaxed);
  };

  auto job = [&](size_t i) {
    const BatchQuery& q = batch[i];
    BatchItemResult& item = out->items[i];
    obs::ExplainProfile* profile = nullptr;
    if (degraded_flags[i] == 0 && sampler.enabled() && sampler.ShouldSample(i)) {
      item.profile = std::make_unique<obs::ExplainProfile>();
      profile = item.profile.get();
    }
    Result<std::vector<TupleId>> r =
        index->Select(q.type, q.query, q.method, &item.stats, profile);
    if (r.ok()) {
      item.ids = std::move(r.value());
    } else {
      item.status = r.status();
    }
  };
  Status st = Execute({index->pager(), index->relation()->pager()}, admitted,
                      job, writer, &bobs, out, &on_degrade, &on_shed);
  out->shed += shed_count.load(std::memory_order_relaxed);
  out->degraded = degraded_count.load(std::memory_order_relaxed);
  TallySampledTraces(out);
  return st;
}

Status QueryExecutor::RunBatch(DualIndex* index,
                               const std::vector<BatchQuery>& batch,
                               const BatchObservability& bobs,
                               BatchResult* out) {
  return RunInstrumented(index, batch, bobs, out, /*writer=*/nullptr);
}

Status QueryExecutor::RunBatchWithWriter(DualIndex* index,
                                         const std::vector<BatchQuery>& batch,
                                         const BatchObservability& bobs,
                                         BatchResult* out,
                                         const std::function<Status()>& writer) {
  return RunInstrumented(index, batch, bobs, out, &writer);
}

Status QueryExecutor::RunBatchWithWriter(DualIndex* index,
                                         const std::vector<BatchQuery>& batch,
                                         std::vector<BatchItemResult>* results,
                                         const std::function<Status()>& writer) {
  results->clear();
  results->resize(batch.size());
  auto job = [&](size_t i) {
    const BatchQuery& q = batch[i];
    BatchItemResult& out = (*results)[i];
    Result<std::vector<TupleId>> r =
        index->Select(q.type, q.query, q.method, &out.stats);
    if (r.ok()) {
      out.ids = std::move(r.value());
    } else {
      out.status = r.status();
    }
  };
  return RunWithWriter({index->pager(), index->relation()->pager()},
                       batch.size(), job, writer);
}

Status QueryExecutor::RunBatch(DualIndex* index,
                               const std::vector<BatchQuery>& batch,
                               std::vector<BatchItemResult>* results) {
  results->clear();
  results->resize(batch.size());
  auto job = [&](size_t i) {
    const BatchQuery& q = batch[i];
    BatchItemResult& out = (*results)[i];
    Result<std::vector<TupleId>> r =
        index->Select(q.type, q.query, q.method, &out.stats);
    if (r.ok()) {
      out.ids = std::move(r.value());
    } else {
      out.status = r.status();
    }
  };
  return RunSharded({index->pager(), index->relation()->pager()},
                    batch.size(), job);
}

Status QueryExecutor::RunBatch(RPlusTree* tree, Relation* relation,
                               const std::vector<BatchQuery>& batch,
                               std::vector<BatchItemResult>* results) {
  results->clear();
  results->resize(batch.size());
  auto job = [&](size_t i) {
    const BatchQuery& q = batch[i];
    BatchItemResult& out = (*results)[i];
    Result<std::vector<TupleId>> r =
        RTreeSelect(tree, relation, q.type, q.query, &out.stats);
    if (r.ok()) {
      out.ids = std::move(r.value());
    } else {
      out.status = r.status();
    }
  };
  return RunSharded({tree->pager(), relation->pager()}, batch.size(), job);
}

Status QueryExecutor::RunBatch(DDimDualIndex* index,
                               const std::vector<BatchQueryD>& batch,
                               std::vector<BatchItemResult>* results) {
  results->clear();
  results->resize(batch.size());
  auto job = [&](size_t i) {
    const BatchQueryD& q = batch[i];
    BatchItemResult& out = (*results)[i];
    Result<std::vector<TupleId>> r =
        index->Select(q.type, q.query, q.method, &out.stats);
    if (r.ok()) {
      out.ids = std::move(r.value());
    } else {
      out.status = r.status();
    }
  };
  return RunSharded({index->pager(), index->relation()->pager()},
                    batch.size(), job);
}

}  // namespace exec
}  // namespace cdb
