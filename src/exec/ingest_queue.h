// Group-commit ingest queue for the single-writer path (ISSUE 9 tentpole).
//
// SWMR serving (DESIGN.md §2d) funnels every mutation through one writer
// thread, and the PR 4 ingest lane paid the full durability bill — journal
// commit, data fsync, publish epoch barrier — once per append. IngestQueue
// amortizes that bill across a *group*: many producer threads Submit()
// tuples into a bounded MPSC queue, and the writer thread drains a group
// (bounded by max_group_size and, optionally, a commit wait on the
// injectable obs::Clock), applies every append through Relation::Insert +
// DualIndex::Insert (augmented-tree path), then runs ONE journal commit
// and ONE PublishAppends epoch barrier for the whole group.
//
// Ack semantics (DESIGN.md §2i):
//  - A Submit() returns an IngestHandle whose Wait() resolves only after
//    the group's publish — durability is never acknowledged early. On
//    success Wait() yields the assigned TupleId.
//  - Admission is bounded, OverloadPolicy-style: a full queue sheds the
//    append immediately with kUnavailable (the producer may retry), and a
//    malformed tuple is rejected producer-side with InvalidArgument via
//    DualIndex::ValidateForInsert so it can never fail a group mid-apply.
//  - A group fails as a whole: any environmental failure while applying or
//    committing (a transient journal-write fault surfaces kUnavailable)
//    resolves every handle in the group with that status and poisons the
//    lane — the writer stops, queued and future appends are shed with
//    kUnavailable, and recovery is a reopen (journal rollback discards the
//    uncommitted group; grouped writes are never retried internally,
//    matching the §2g write-retry rule).
//
// Threading: Submit()/Close()/stats() are thread-safe; RunWriter() must
// run on exactly one thread — under SWMR serving, the thread that entered
// Pager::BeginConcurrentReads(true), i.e. as the `writer` callback of
// QueryExecutor::RunWithWriter. It also runs standalone in exclusive mode
// (no concurrent readers), where PublishAppends is a harmless no-op.

#ifndef CDB_EXEC_INGEST_QUEUE_H_
#define CDB_EXEC_INGEST_QUEUE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "constraint/relation.h"
#include "dualindex/dual_index.h"
#include "obs/clock.h"
#include "obs/event_log.h"
#include "obs/latency.h"
#include "obs/pipeline.h"
#include "storage/pager.h"

namespace cdb {
namespace exec {

struct IngestQueueOptions {
  /// Bounded admission: a Submit() finding this many appends already
  /// queued is shed immediately with kUnavailable.
  size_t queue_capacity = 1024;
  /// A group commits once it holds this many appends (hard bound; also
  /// the most the writer drains per commit).
  size_t max_group_size = 64;
  /// How long the writer waits for a group to fill before committing a
  /// partial one, measured on `clock` from the moment the group's first
  /// append is seen. 0 = commit whatever is queued immediately (greedy
  /// batching: group size then tracks producer burstiness).
  uint64_t commit_wait_ns = 0;
  /// Clock behind the commit wait (null = obs::DefaultClock(); tests
  /// inject a ManualClock to place the deadline deterministically).
  obs::Clock* clock = nullptr;
  /// Optional per-group commit timing: each committed group records its
  /// apply + journal-commit + publish duration here (on `clock`). Not
  /// owned; must outlive the queue. The online_updates bench reads its
  /// percentiles as the group publish latency.
  obs::LatencyRecorder* publish_latency = nullptr;
  /// Optional per-append stage attribution (ISSUE 10): when attached,
  /// every append's Submit -> visibility latency is decomposed into the
  /// five pipeline stages on `clock` (see obs/pipeline.h), the
  /// time-weighted depth integral is maintained, and sampled groups keep
  /// a stage profile whose sums are balance-checked at runtime. Not
  /// owned; must outlive the queue. Null = zero extra clock reads.
  obs::IngestPipelineRecorders* pipeline = nullptr;
  /// Optional flight recorder: admission/group/poison transitions are
  /// recorded as structured events (see obs/event_log.h). Not owned; may
  /// be shared between lanes; must outlive the queue.
  obs::EventLog* event_log = nullptr;
  /// When non-empty (and event_log is attached), the lane dumps the
  /// flight recorder to this file the moment it poisons — every
  /// chaos-sweep failure ships its own black box. Best-effort: a dump
  /// failure never masks the poisoning status.
  std::string flight_dump_path;
};

/// Cumulative queue counters (see also the "ingest.*" global metrics).
struct IngestQueueStats {
  uint64_t submitted = 0;         ///< Appends accepted into the queue.
  uint64_t shed = 0;              ///< Appends rejected at admission.
  uint64_t groups_committed = 0;  ///< Groups fully published.
  uint64_t appends_committed = 0; ///< Appends across committed groups.
  uint64_t groups_failed = 0;     ///< 0 or 1: a failure poisons the lane.
  uint64_t max_group_size = 0;    ///< Largest committed group.
  uint64_t commit_wait_ns = 0;    ///< Total time spent filling groups.
  uint64_t depth_high_water = 0;  ///< Deepest the queue has been.
  /// Commit-trigger ledger (ISSUE 10): why each committed group left the
  /// assembly window. The three always sum to groups_committed.
  uint64_t commits_full = 0;      ///< Group reached max_group_size.
  uint64_t commits_deadline = 0;  ///< commit_wait_ns expired on a partial.
  uint64_t commits_drain = 0;     ///< Greedy batching / close-time drain.
  /// Time-weighted queue-depth integral (sum over time of depth * dt, in
  /// depth-nanoseconds): divide by elapsed time for the average depth.
  /// Maintained only while pipeline recorders are attached (it costs a
  /// clock read per queue transition); 0 otherwise.
  uint64_t depth_time_ns = 0;
};

/// Completion future for one Submit(). Copyable; all copies share the
/// resolution. Wait() blocks until the append's group published (or
/// failed) and never resolves before the group's durability point.
class IngestHandle {
 public:
  IngestHandle() = default;

  bool valid() const { return state_ != nullptr; }

  /// Blocks until the group containing this append resolved. Returns the
  /// assigned TupleId on success; the group's failure status otherwise.
  Result<TupleId> Wait();

  /// Non-blocking probe: true once the group resolved either way.
  bool done() const;

 private:
  friend class IngestQueue;
  struct State;
  std::shared_ptr<State> state_;
};

/// See file comment.
class IngestQueue {
 public:
  /// `relation` and `rel_pager` are required; `index`/`idx_pager` may be
  /// null for relation-only lanes (tests). None are owned; all must
  /// outlive the queue.
  IngestQueue(Relation* relation, DualIndex* index, Pager* rel_pager,
              Pager* idx_pager, const IngestQueueOptions& options);
  ~IngestQueue();
  IngestQueue(const IngestQueue&) = delete;
  IngestQueue& operator=(const IngestQueue&) = delete;

  /// Producer side (any thread): enqueues `tuple` for the next group.
  /// Fails fast — without blocking — with kUnavailable when the queue is
  /// full, closed, or poisoned, and with InvalidArgument when the tuple
  /// cannot be indexed (checked against the lane's DualIndex when one is
  /// attached).
  Result<IngestHandle> Submit(const GeneralizedTuple& tuple);

  /// Stops admission (subsequent Submits shed with kUnavailable) and wakes
  /// the writer, which drains the backlog and returns.
  void Close();

  /// Writer loop: drains groups until Close() + empty queue, or until a
  /// group fails (lane poisoned; the failing status is returned after all
  /// queued appends were resolved with kUnavailable). Must run on the
  /// single writer thread — see file comment.
  Status RunWriter();

  IngestQueueStats stats() const;

  /// Publishes the lane's stats as gauges "<prefix>.submitted", ".shed",
  /// ".groups_committed", ".appends_committed", ".groups_failed",
  /// ".max_group_size", ".commit_wait_ns", ".depth" (current),
  /// ".depth_high_water", ".depth_time_ns", ".commits_full",
  /// ".commits_deadline", ".commits_drain", ".poisoned" (0/1) and
  /// ".closed" (0/1), so a Prometheus scrape sees lane health without
  /// code access (ISSUE 10 satellite).
  void ExportMetrics(obs::MetricsRegistry* registry,
                     const std::string& prefix) const;

 private:
  struct Pending {
    GeneralizedTuple tuple;
    std::shared_ptr<IngestHandle::State> state;
    uint64_t submit_ns = 0;  ///< Clock at admission (pipeline only).
  };

  /// Applies `group` and commits it: inserts, one journal commit on the
  /// relation pager, PublishAppends, index-pager commit. On success every
  /// handle resolves with its TupleId; on failure the caller poisons the
  /// lane and CommitGroup has already resolved the group with the error.
  /// `group_seq` numbers the group for events/sampling; `open_ns` and
  /// `drain_ns` anchor the per-append stage attribution (0 when the
  /// pipeline is not instrumented).
  Status CommitGroup(std::vector<Pending>* group, uint64_t group_seq,
                     uint64_t open_ns, uint64_t drain_ns);

  /// Charges (now - last depth change) * current depth to the depth
  /// integral. Caller holds mu_; call *before* the depth changes.
  void AccumulateDepthLocked(uint64_t now_ns);

  static void Resolve(const std::shared_ptr<IngestHandle::State>& state,
                      const Status& status, TupleId id);

  Relation* relation_;
  DualIndex* index_;
  Pager* rel_pager_;
  Pager* idx_pager_;
  IngestQueueOptions options_;
  obs::Clock* clock_;

  mutable std::mutex mu_;
  std::condition_variable writer_cv_;
  std::deque<Pending> queue_;
  bool closed_ = false;
  bool poisoned_ = false;
  IngestQueueStats stats_;
  uint64_t next_group_seq_ = 0;       // Writer thread only.
  uint64_t last_depth_change_ns_ = 0; // Guarded by mu_ (pipeline only).
};

}  // namespace exec
}  // namespace cdb

#endif  // CDB_EXEC_INGEST_QUEUE_H_
