// Parallel batch query executor (ISSUE 3 tentpole).
//
// The paper evaluates one query at a time; the ROADMAP north star is a
// system serving many half-plane selections at once. QueryExecutor supplies
// the serving layer: it owns a fixed pool of worker threads and fans a
// batch of ALL/EXIST queries out across the dual index, the d-dimensional
// dual index, or the R+-tree baseline.
//
// Protocol per batch (RunSharded):
//   1. Every pager involved is switched into concurrent-read mode
//      (Pager::BeginConcurrentReads — sharded buffer pool, read-only).
//   2. Each worker opens one PagerReadSession per pager, then pulls query
//      indices off a shared atomic cursor until the batch is drained. The
//      sessions route each worker's IoStats to thread-local sinks, so the
//      per-query QueryStats and ExplainProfiles a worker records are exact
//      — decision 11's page-access accounting survives parallelism.
//   3. Workers close their sessions (merging stats into Pager::stats())
//      and the pagers return to exclusive mode.
//
// Failure containment: each query's Status lands in its own
// BatchItemResult; a query failing (e.g. Status::Corruption from a bad
// page) never aborts the batch, deadlocks a worker, or loses the queries
// behind it. RunBatch itself only fails when the mode switch does.
//
// With one thread the executor visits queries in submission order on a
// single worker, so its page-access counts are identical to calling
// DualIndex::Select in a loop (the throughput_scaling bench asserts this).

#ifndef CDB_EXEC_QUERY_EXECUTOR_H_
#define CDB_EXEC_QUERY_EXECUTOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "dualindex/ddim_index.h"
#include "dualindex/dual_index.h"
#include "obs/clock.h"
#include "obs/latency.h"
#include "obs/trace.h"
#include "rtree/rtree_query.h"

namespace cdb {
namespace exec {

/// One 2-d query of a batch.
struct BatchQuery {
  SelectionType type = SelectionType::kExist;
  HalfPlaneQuery query;
  QueryMethod method = QueryMethod::kAuto;
};

/// One d-dimensional query of a batch.
struct BatchQueryD {
  SelectionType type = SelectionType::kExist;
  HalfPlaneQueryD query;
  DDimDualIndex::Method method = DDimDualIndex::Method::kT1;
};

/// Outcome of one query. `ids` and `stats` are meaningful iff status.ok().
/// `profile` is non-null only when the batch ran with trace sampling on
/// and the deterministic sampler selected this index (ISSUE 5); it then
/// holds the span-attributed ExplainProfile of the execution.
struct BatchItemResult {
  Status status;
  std::vector<TupleId> ids;
  QueryStats stats;
  std::unique_ptr<obs::ExplainProfile> profile;
};

/// Returns the first non-OK status in `results` (batch-level error
/// summary), or OK.
Status FirstError(const std::vector<BatchItemResult>& results);

/// Overload-control policy (ISSUE 7). Default-constructed = fully off:
/// every query is admitted and served, and the executor reads no clock for
/// it. The load signal for the ladder is the per-query queue wait — the
/// same quantity the ISSUE 5 queue-wait digests measure.
struct OverloadPolicy {
  /// Bounded admission: at most this many queries of a batch are admitted;
  /// the rest are rejected up front with kUnavailable instead of queueing
  /// unboundedly. 0 = unbounded.
  size_t admission_capacity = 0;
  /// Degrade ladder, first rung: a query picked up after waiting at least
  /// this many nanoseconds is served without trace sampling (profiles are
  /// the first cost dropped under load). 0 = off.
  uint64_t degrade_queue_wait_ns = 0;
  /// Degrade ladder, second rung: a query that waited at least this long
  /// is shed — completed immediately with kUnavailable, never executed.
  /// 0 = off.
  uint64_t shed_queue_wait_ns = 0;

  bool ladder_enabled() const {
    return degrade_queue_wait_ns > 0 || shed_queue_wait_ns > 0;
  }
};

/// Per-batch observability knobs (ISSUE 5). Default-constructed = fully
/// off: the executor then reads no clock and allocates nothing, keeping
/// the serial/paper paths byte-identical.
struct BatchObservability {
  /// Record per-query service time and queue-wait time into
  /// BatchResult::service / ::queue_wait and export them as
  /// "exec.query.latency.*" / "exec.queue.wait.*" gauges.
  bool record_latency = false;
  /// Clock behind the latency timers, sampled tracers, and the overload
  /// ladder (null = obs::DefaultClock(); tests inject a ManualClock).
  obs::Clock* clock = nullptr;
  /// Attach an ExplainProfile to ~1-in-N queries, chosen deterministically
  /// from (trace_sample_seed, query index) — see obs::TraceSampler. 0
  /// disables sampling, 1 traces everything.
  uint64_t trace_sample_every = 0;
  uint64_t trace_sample_seed = 0;
  /// Overload control (ISSUE 7): admission bound plus the degrade/shed
  /// ladder. Shed queries carry Status kUnavailable in their item and bump
  /// the "exec.shed.count" counter.
  OverloadPolicy overload;
};

/// Outcome of an instrumented batch (the RunBatch overloads taking a
/// BatchObservability). `items[i]` corresponds to batch[i]; with overload
/// control off the latency digests cover exactly the batch
/// (service.count == queue_wait.count == items.size() — the throughput
/// bench asserts this). Shed queries record no service time (wait-shed
/// ones still record queue wait; admission-shed ones record neither).
struct BatchResult {
  std::vector<BatchItemResult> items;
  /// Per-query service time: job pickup to completion on a worker,
  /// including per-item session open/close and refinement I/O.
  obs::LatencySnapshot service;
  /// Per-query queue wait: batch submission to job pickup.
  obs::LatencySnapshot queue_wait;
  /// Sampled-tracing tallies: profiles attached, and how many of them
  /// passed the self==total balance invariant (must be equal; the bench
  /// and tests fail otherwise).
  uint64_t sampled_traces = 0;
  uint64_t balanced_traces = 0;
  /// Overload-control outcome (ISSUE 7): queries rejected — at admission
  /// or by the queue-wait shed rung; their items carry kUnavailable — and
  /// queries served without trace sampling because the degrade rung fired.
  /// Always shed + (items completed) == items.size().
  uint64_t shed = 0;
  uint64_t degraded = 0;
};

/// See file comment. Thread-compatible: one batch runs at a time.
class QueryExecutor {
 public:
  /// Spawns `threads` workers (clamped to at least 1). The pool is fixed
  /// for the executor's lifetime; batches reuse it.
  explicit QueryExecutor(size_t threads);
  ~QueryExecutor();
  QueryExecutor(const QueryExecutor&) = delete;
  QueryExecutor& operator=(const QueryExecutor&) = delete;

  size_t thread_count() const { return workers_.size(); }

  /// Runs `batch` against the dual index. `results` is resized to match;
  /// element i corresponds to batch[i].
  Status RunBatch(DualIndex* index, const std::vector<BatchQuery>& batch,
                  std::vector<BatchItemResult>* results);

  /// Instrumented form: as above, plus per-query service/queue-wait latency
  /// recording and deterministic trace sampling per `bobs` (ISSUE 5).
  Status RunBatch(DualIndex* index, const std::vector<BatchQuery>& batch,
                  const BatchObservability& bobs, BatchResult* out);

  /// Runs `batch` against the R+-tree baseline (refined on `relation`).
  Status RunBatch(RPlusTree* tree, Relation* relation,
                  const std::vector<BatchQuery>& batch,
                  std::vector<BatchItemResult>* results);

  /// Runs a d-dimensional batch against the d-dim dual index.
  Status RunBatch(DDimDualIndex* index, const std::vector<BatchQueryD>& batch,
                  std::vector<BatchItemResult>* results);

  /// Generic engine behind the typed RunBatch overloads: switches every
  /// pager in `pagers` (duplicates tolerated) into concurrent-read mode,
  /// runs job(i) for i in [0, n) across the pool — each worker holding a
  /// PagerReadSession on every pager — then restores exclusive mode.
  /// `job` must confine each invocation's effects to index-i state and
  /// must not throw.
  Status RunSharded(std::vector<Pager*> pagers, size_t n,
                    const std::function<void(size_t)>& job);

  /// Ingest lane: like RunSharded, but the pagers enter single-writer mode
  /// (Pager::BeginConcurrentReads(true)) with the *calling thread* as the
  /// writer, and `writer` runs on it concurrently with the workers. The
  /// writer mutates through the journal and publishes each batch of
  /// changes with Pager::Flush(); workers open their read sessions per
  /// *item* instead of per batch, so a publish only waits for in-flight
  /// queries, never for the whole batch. Returns the writer's error if
  /// any, else the first mode-switch/teardown error (per-item query
  /// failures land in the job's own results, as in RunSharded).
  Status RunWithWriter(std::vector<Pager*> pagers, size_t n,
                       const std::function<void(size_t)>& job,
                       const std::function<Status()>& writer);

  /// Typed ingest-lane helper over the dual index: runs `batch` like
  /// RunBatch(DualIndex*, ...) while `writer` (typically a loop of
  /// Relation::Insert + DualIndex::Insert + publish) runs on the calling
  /// thread.
  Status RunBatchWithWriter(DualIndex* index,
                            const std::vector<BatchQuery>& batch,
                            std::vector<BatchItemResult>* results,
                            const std::function<Status()>& writer);

  /// Instrumented ingest lane: RunBatchWithWriter plus the ISSUE 5
  /// latency/sampling machinery of the instrumented RunBatch.
  Status RunBatchWithWriter(DualIndex* index,
                            const std::vector<BatchQuery>& batch,
                            const BatchObservability& bobs, BatchResult* out,
                            const std::function<Status()>& writer);

 private:
  struct Batch {
    size_t n = 0;
    const std::function<void(size_t)>* job = nullptr;
    std::atomic<size_t> next{0};
    size_t finished_workers = 0;
    // Open read sessions around each item instead of the worker's whole
    // share — required under a live writer, whose publish gate drains
    // active sessions (a per-batch session would deadlock it).
    bool per_item_sessions = false;
    // Latency instrumentation (null = off: the worker loop then reads no
    // clock at all, preserving the uninstrumented path exactly). Queue
    // wait is measured from submit_ns (stamped just before the batch is
    // handed to the pool) to job pickup; service from pickup to job
    // return, per-item sessions included. The clock is also set — with the
    // recorders left null — when only the overload ladder needs it.
    obs::Clock* clock = nullptr;
    obs::LatencyRecorder* service = nullptr;
    obs::LatencyRecorder* queue = nullptr;
    uint64_t submit_ns = 0;
    // Overload ladder (ISSUE 7; 0 = rung off, requires clock). A query
    // whose queue wait reaches shed_wait_ns is completed by on_shed
    // instead of the job (queue wait still recorded, service time not —
    // the query was never served); one reaching degrade_wait_ns has
    // on_degrade run first (same worker thread, so the job sees its
    // effect without synchronization).
    uint64_t degrade_wait_ns = 0;
    uint64_t shed_wait_ns = 0;
    const std::function<void(size_t)>* on_degrade = nullptr;
    const std::function<void(size_t)>* on_shed = nullptr;
  };

  // The engine behind RunSharded / RunWithWriter: mode switch, dispatch,
  // teardown. `writer` null = plain concurrent-read mode with per-batch
  // sessions; non-null = single-writer mode, per-item sessions, writer
  // runs on the calling thread. `bobs`/`out` non-null = latency recording
  // into *out plus "exec.query.latency.*"/"exec.queue.wait.*" gauges.
  // `on_degrade`/`on_shed` implement the overload ladder when
  // bobs->overload enables it (see Batch).
  Status Execute(std::vector<Pager*> pagers, size_t n,
                 const std::function<void(size_t)>& job,
                 const std::function<Status()>* writer,
                 const BatchObservability* bobs, BatchResult* out,
                 const std::function<void(size_t)>* on_degrade = nullptr,
                 const std::function<void(size_t)>* on_shed = nullptr);

  // Shared body of the instrumented DualIndex RunBatch overloads
  // (`writer` null = plain batch): trace sampling, overload control,
  // latency recording.
  Status RunInstrumented(DualIndex* index, const std::vector<BatchQuery>& batch,
                         const BatchObservability& bobs, BatchResult* out,
                         const std::function<Status()>* writer);

  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;  // Workers wait for a new generation.
  std::condition_variable done_cv_;  // RunSharded waits for the last worker.
  uint64_t generation_ = 0;
  bool shutdown_ = false;
  Batch* current_ = nullptr;
  std::vector<Pager*> session_pagers_;
  std::vector<std::thread> workers_;
};

}  // namespace exec
}  // namespace cdb

#endif  // CDB_EXEC_QUERY_EXECUTOR_H_
