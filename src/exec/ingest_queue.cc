#include "exec/ingest_queue.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <utility>

#include "obs/metrics.h"

namespace cdb {
namespace exec {

namespace {

/// Saturating difference: stage anchors are monotone on a monotone clock,
/// but a ManualClock stepped backwards must clamp, not wrap.
uint64_t SatDiff(uint64_t later, uint64_t earlier) {
  return later > earlier ? later - earlier : 0;
}

}  // namespace

struct IngestHandle::State {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  Status status;
  TupleId id = 0;
};

Result<TupleId> IngestHandle::Wait() {
  if (state_ == nullptr) {
    return Status::InvalidArgument("empty ingest handle");
  }
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [&] { return state_->done; });
  if (!state_->status.ok()) return state_->status;
  return state_->id;
}

bool IngestHandle::done() const {
  if (state_ == nullptr) return false;
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->done;
}

IngestQueue::IngestQueue(Relation* relation, DualIndex* index,
                         Pager* rel_pager, Pager* idx_pager,
                         const IngestQueueOptions& options)
    : relation_(relation),
      index_(index),
      rel_pager_(rel_pager),
      idx_pager_(idx_pager),
      options_(options),
      clock_(options.clock != nullptr ? options.clock : obs::DefaultClock()) {
  if (options_.queue_capacity == 0) options_.queue_capacity = 1;
  if (options_.max_group_size == 0) options_.max_group_size = 1;
  if (options_.pipeline != nullptr) {
    last_depth_change_ns_ = clock_->NowNanos();
  }
}

IngestQueue::~IngestQueue() {
  // A destroyed lane must leave no Wait() hanging: whatever the writer
  // never drained resolves as shed.
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
  if (options_.pipeline != nullptr) {
    AccumulateDepthLocked(clock_->NowNanos());
  }
  for (Pending& p : queue_) {
    Resolve(p.state, Status::Unavailable("ingest queue destroyed"), 0);
  }
  queue_.clear();
}

void IngestQueue::AccumulateDepthLocked(uint64_t now_ns) {
  stats_.depth_time_ns +=
      SatDiff(now_ns, last_depth_change_ns_) * queue_.size();
  last_depth_change_ns_ = now_ns;
}

void IngestQueue::Resolve(const std::shared_ptr<IngestHandle::State>& state,
                          const Status& status, TupleId id) {
  {
    std::lock_guard<std::mutex> lock(state->mu);
    state->status = status;
    state->id = id;
    state->done = true;
  }
  state->cv.notify_all();
}

Result<IngestHandle> IngestQueue::Submit(const GeneralizedTuple& tuple) {
  // Validation runs producer-side, outside the queue lock: a tuple that
  // could never be applied is the producer's bug, and rejecting it here
  // keeps whole-group failure reserved for environmental faults.
  if (tuple.empty()) {
    if (options_.event_log != nullptr) {
      options_.event_log->Record(obs::EventType::kReject);
    }
    return Status::InvalidArgument("tuple must have at least one constraint");
  }
  if (index_ != nullptr) {
    Status valid = index_->ValidateForInsert(tuple);
    if (!valid.ok()) {
      if (options_.event_log != nullptr) {
        options_.event_log->Record(obs::EventType::kReject);
      }
      return valid;
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_ || poisoned_ || queue_.size() >= options_.queue_capacity) {
    ++stats_.shed;
    static obs::Counter* const shed_counter =
        obs::GlobalMetrics().counter("ingest.shed");
    shed_counter->Increment();
    if (options_.event_log != nullptr) {
      options_.event_log->Record(obs::EventType::kShed,
                                 poisoned_ ? 2 : closed_ ? 1 : 0);
    }
    return Status::Unavailable(
        poisoned_ ? "ingest lane failed; reopen to retry"
        : closed_ ? "ingest queue closed"
                  : "ingest queue full");
  }
  Pending p;
  p.tuple = tuple;
  p.state = std::make_shared<IngestHandle::State>();
  if (options_.pipeline != nullptr) {
    p.submit_ns = clock_->NowNanos();
    AccumulateDepthLocked(p.submit_ns);
  }
  IngestHandle handle;
  handle.state_ = p.state;
  queue_.push_back(std::move(p));
  ++stats_.submitted;
  stats_.depth_high_water =
      std::max(stats_.depth_high_water, static_cast<uint64_t>(queue_.size()));
  if (options_.event_log != nullptr) {
    options_.event_log->Record(obs::EventType::kSubmit, stats_.submitted - 1);
  }
  writer_cv_.notify_one();
  return handle;
}

void IngestQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  if (options_.event_log != nullptr) {
    options_.event_log->Record(obs::EventType::kLaneClosed);
  }
  writer_cv_.notify_all();
}

Status IngestQueue::CommitGroup(std::vector<Pending>* group,
                                uint64_t group_seq, uint64_t open_ns,
                                uint64_t drain_ns) {
  static obs::Counter* const groups_counter =
      obs::GlobalMetrics().counter("ingest.groups");
  static obs::Counter* const group_size_counter =
      obs::GlobalMetrics().counter("ingest.group.size");
  static obs::Counter* const group_fsyncs =
      obs::GlobalMetrics().counter("ingest.group.fsyncs");

  obs::IngestPipelineRecorders* const pipeline = options_.pipeline;
  obs::EventLog* const event_log = options_.event_log;
  const uint64_t commit_t0 =
      options_.publish_latency != nullptr ? clock_->NowNanos() : 0;
  // Stage boundaries for the per-append attribution. apply/fsync/publish
  // are group-wide (every append in the group shares them); admission and
  // group_wait are derived per append from its submit time below.
  uint64_t apply_ns = 0, fsync_ns = 0, visible_ns = 0;
  Status st = [&]() -> Status {
    for (Pending& p : *group) {
      Result<TupleId> id = relation_->Insert(p.tuple);
      if (!id.ok()) return id.status();
      if (index_ != nullptr) {
        CDB_RETURN_IF_ERROR(index_->Insert(id.value(), p.tuple));
      }
      // Provisional: the id is acknowledged only after the publish below.
      p.state->id = id.value();
    }
    if (pipeline != nullptr) apply_ns = clock_->NowNanos();
    if (event_log != nullptr) {
      event_log->Record(obs::EventType::kGroupApplied, group_seq,
                        group->size());
    }
    // The group's single durability point: one journal commit covering
    // every tuple page the group dirtied. A transient write fault here
    // surfaces kUnavailable and fails the whole group.
    CDB_RETURN_IF_ERROR(rel_pager_->Flush());
    group_fsyncs->Increment();
    if (pipeline != nullptr) fsync_ns = clock_->NowNanos();
    if (event_log != nullptr) {
      event_log->Record(obs::EventType::kGroupFsync, group_seq);
    }
    // Publish order mirrors the PR 4 lane: tuple pages first, then the
    // directory bound that makes them reachable, then the index pages
    // that reference them.
    relation_->PublishAppends();
    if (idx_pager_ != nullptr && idx_pager_ != rel_pager_) {
      CDB_RETURN_IF_ERROR(idx_pager_->Flush());
    }
    // The visibility point: the publish epoch advanced and the index
    // pages are committed — the first instant a read session can observe
    // every tuple in the group.
    if (pipeline != nullptr) visible_ns = clock_->NowNanos();
    if (event_log != nullptr) {
      event_log->Record(obs::EventType::kGroupPublish, group_seq);
    }
    return Status::OK();
  }();

  if (!st.ok()) {
    if (event_log != nullptr) {
      event_log->Record(obs::EventType::kGroupFailed, group_seq,
                        static_cast<uint64_t>(st.code()));
      if (st.code() == StatusCode::kCorruption) {
        event_log->Record(obs::EventType::kCorruption, group_seq);
      }
    }
    for (Pending& p : *group) {
      Resolve(p.state, st, 0);
    }
    return st;
  }
  if (options_.publish_latency != nullptr) {
    options_.publish_latency->RecordNanos(clock_->NowNanos() - commit_t0);
  }
  if (pipeline != nullptr) {
    // Per-append stage decomposition. With anchor = max(submit, open) the
    // five stages partition [submit, visible] exactly:
    //   admission + group_wait = (open - submit) + (drain - anchor)
    //                          = drain - submit   (either branch of max),
    // and apply/fsync/publish telescope through the shared boundaries, so
    // the sums Balance() against visibility in integer nanoseconds.
    obs::IngestGroupProfile profile;
    profile.group_seq = group_seq;
    profile.appends = group->size();
    for (const Pending& p : *group) {
      std::array<uint64_t, obs::kIngestStageCount> stage_ns{};
      const uint64_t anchor = std::max(p.submit_ns, open_ns);
      stage_ns[static_cast<size_t>(obs::IngestStage::kAdmission)] =
          SatDiff(open_ns, p.submit_ns);
      stage_ns[static_cast<size_t>(obs::IngestStage::kGroupWait)] =
          SatDiff(drain_ns, anchor);
      stage_ns[static_cast<size_t>(obs::IngestStage::kApply)] =
          SatDiff(apply_ns, drain_ns);
      stage_ns[static_cast<size_t>(obs::IngestStage::kFsync)] =
          SatDiff(fsync_ns, apply_ns);
      stage_ns[static_cast<size_t>(obs::IngestStage::kPublish)] =
          SatDiff(visible_ns, fsync_ns);
      const uint64_t visibility = SatDiff(visible_ns, p.submit_ns);
      pipeline->RecordAppend(stage_ns, visibility);
      for (int i = 0; i < obs::kIngestStageCount; ++i) {
        profile.stage_ns[i] += stage_ns[i];
      }
      profile.visibility_ns += visibility;
    }
    if (pipeline->ShouldSampleGroup(group_seq)) {
      pipeline->AddGroupProfile(profile);
    }
  }
  groups_counter->Increment();
  group_size_counter->Increment(group->size());
  for (Pending& p : *group) {
    Resolve(p.state, Status::OK(), p.state->id);
  }
  return Status::OK();
}

Status IngestQueue::RunWriter() {
  static obs::Counter* const commit_wait_counter =
      obs::GlobalMetrics().counter("ingest.commit.wait_ns");
  obs::IngestPipelineRecorders* const pipeline = options_.pipeline;
  obs::EventLog* const event_log = options_.event_log;
  for (;;) {
    std::vector<Pending> group;
    uint64_t waited_ns = 0;
    uint64_t open_ns = 0, drain_ns = 0;
    obs::IngestCommitTrigger trigger = obs::IngestCommitTrigger::kDrain;
    const uint64_t group_seq = next_group_seq_;
    {
      std::unique_lock<std::mutex> lock(mu_);
      writer_cv_.wait(lock, [&] { return !queue_.empty() || closed_; });
      if (queue_.empty()) return Status::OK();  // Closed and drained.

      // The group opens the moment the writer turns its attention to the
      // queued appends: everything before this instant is admission time,
      // everything until the drain below is group-formation time.
      if (pipeline != nullptr) open_ns = clock_->NowNanos();
      if (event_log != nullptr) {
        event_log->Record(obs::EventType::kGroupOpen, group_seq);
      }

      // Bounded group assembly: from the first append seen, wait at most
      // commit_wait_ns (on the injected clock) for the group to fill.
      // Real-time slices keep the loop responsive under a ManualClock.
      bool deadline_expired = false;
      if (options_.commit_wait_ns > 0 &&
          queue_.size() < options_.max_group_size && !closed_) {
        const uint64_t t0 = clock_->NowNanos();
        const uint64_t deadline = t0 + options_.commit_wait_ns;
        while (queue_.size() < options_.max_group_size && !closed_ &&
               clock_->NowNanos() < deadline) {
          writer_cv_.wait_for(lock, std::chrono::microseconds(200), [&] {
            return queue_.size() >= options_.max_group_size || closed_;
          });
        }
        waited_ns = clock_->NowNanos() - t0;
        deadline_expired =
            queue_.size() < options_.max_group_size && !closed_;
      }

      const size_t take = std::min(queue_.size(), options_.max_group_size);
      // Why the group left the assembly window, for the stall ledger: a
      // full group beats the other causes (it would have committed at
      // this size regardless of the wait outcome).
      trigger = take >= options_.max_group_size
                    ? obs::IngestCommitTrigger::kFull
                : deadline_expired ? obs::IngestCommitTrigger::kDeadline
                                   : obs::IngestCommitTrigger::kDrain;
      if (pipeline != nullptr) {
        drain_ns = clock_->NowNanos();
        AccumulateDepthLocked(drain_ns);
      }
      group.reserve(take);
      for (size_t i = 0; i < take; ++i) {
        group.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      stats_.commit_wait_ns += waited_ns;
    }
    if (waited_ns > 0) commit_wait_counter->Increment(waited_ns);
    ++next_group_seq_;

    Status st = CommitGroup(&group, group_seq, open_ns, drain_ns);
    if (st.ok() && event_log != nullptr) {
      event_log->Record(obs::EventType::kGroupCommitted, group_seq,
                        group.size(), static_cast<uint64_t>(trigger));
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (st.ok()) {
      ++stats_.groups_committed;
      stats_.appends_committed += group.size();
      stats_.max_group_size =
          std::max(stats_.max_group_size, static_cast<uint64_t>(group.size()));
      switch (trigger) {
        case obs::IngestCommitTrigger::kFull:
          ++stats_.commits_full;
          break;
        case obs::IngestCommitTrigger::kDeadline:
          ++stats_.commits_deadline;
          break;
        case obs::IngestCommitTrigger::kDrain:
          ++stats_.commits_drain;
          break;
      }
      continue;
    }
    // Whole-group failure poisons the lane: the in-memory relation/index
    // now hold unpublished state the journal never committed, so the only
    // consistent continuation is a reopen (which rolls the journal back).
    // Grouped writes are never retried internally (DESIGN.md §2g/§2i).
    poisoned_ = true;
    ++stats_.groups_failed;
    if (pipeline != nullptr) {
      AccumulateDepthLocked(clock_->NowNanos());
    }
    for (Pending& p : queue_) {
      Resolve(p.state,
              Status::Unavailable("ingest lane failed; reopen to retry"), 0);
      ++stats_.shed;
    }
    queue_.clear();
    if (event_log != nullptr) {
      event_log->Record(obs::EventType::kLanePoisoned, group_seq,
                        static_cast<uint64_t>(st.code()));
      // The black box ships itself: a poisoned lane is exactly the state
      // nobody can reproduce after the fact. Best-effort — a dump failure
      // must not mask the poisoning status.
      if (!options_.flight_dump_path.empty()) {
        static obs::Counter* const dump_counter =
            obs::GlobalMetrics().counter("ingest.flight.dumps");
        static obs::Counter* const dump_error_counter =
            obs::GlobalMetrics().counter("ingest.flight.dump_errors");
        if (event_log->DumpToFile(options_.flight_dump_path).ok()) {
          dump_counter->Increment();
        } else {
          dump_error_counter->Increment();
        }
      }
    }
    return st;
  }
}

IngestQueueStats IngestQueue::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void IngestQueue::ExportMetrics(obs::MetricsRegistry* registry,
                                const std::string& prefix) const {
  IngestQueueStats s;
  double depth = 0;
  bool poisoned = false, closed = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    s = stats_;
    depth = static_cast<double>(queue_.size());
    poisoned = poisoned_;
    closed = closed_;
  }
  const auto set = [&](const char* name, double v) {
    registry->gauge(prefix + name)->Set(v);
  };
  set(".submitted", static_cast<double>(s.submitted));
  set(".shed", static_cast<double>(s.shed));
  set(".groups_committed", static_cast<double>(s.groups_committed));
  set(".appends_committed", static_cast<double>(s.appends_committed));
  set(".groups_failed", static_cast<double>(s.groups_failed));
  set(".max_group_size", static_cast<double>(s.max_group_size));
  set(".commit_wait_ns", static_cast<double>(s.commit_wait_ns));
  set(".depth", depth);
  set(".depth_high_water", static_cast<double>(s.depth_high_water));
  set(".depth_time_ns", static_cast<double>(s.depth_time_ns));
  set(".commits_full", static_cast<double>(s.commits_full));
  set(".commits_deadline", static_cast<double>(s.commits_deadline));
  set(".commits_drain", static_cast<double>(s.commits_drain));
  set(".poisoned", poisoned ? 1 : 0);
  set(".closed", closed ? 1 : 0);
}

}  // namespace exec
}  // namespace cdb
