#include "exec/ingest_queue.h"

#include <chrono>
#include <utility>

#include "obs/metrics.h"

namespace cdb {
namespace exec {

struct IngestHandle::State {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  Status status;
  TupleId id = 0;
};

Result<TupleId> IngestHandle::Wait() {
  if (state_ == nullptr) {
    return Status::InvalidArgument("empty ingest handle");
  }
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [&] { return state_->done; });
  if (!state_->status.ok()) return state_->status;
  return state_->id;
}

bool IngestHandle::done() const {
  if (state_ == nullptr) return false;
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->done;
}

IngestQueue::IngestQueue(Relation* relation, DualIndex* index,
                         Pager* rel_pager, Pager* idx_pager,
                         const IngestQueueOptions& options)
    : relation_(relation),
      index_(index),
      rel_pager_(rel_pager),
      idx_pager_(idx_pager),
      options_(options),
      clock_(options.clock != nullptr ? options.clock : obs::DefaultClock()) {
  if (options_.queue_capacity == 0) options_.queue_capacity = 1;
  if (options_.max_group_size == 0) options_.max_group_size = 1;
}

IngestQueue::~IngestQueue() {
  // A destroyed lane must leave no Wait() hanging: whatever the writer
  // never drained resolves as shed.
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
  for (Pending& p : queue_) {
    Resolve(p.state, Status::Unavailable("ingest queue destroyed"), 0);
  }
  queue_.clear();
}

void IngestQueue::Resolve(const std::shared_ptr<IngestHandle::State>& state,
                          const Status& status, TupleId id) {
  {
    std::lock_guard<std::mutex> lock(state->mu);
    state->status = status;
    state->id = id;
    state->done = true;
  }
  state->cv.notify_all();
}

Result<IngestHandle> IngestQueue::Submit(const GeneralizedTuple& tuple) {
  // Validation runs producer-side, outside the queue lock: a tuple that
  // could never be applied is the producer's bug, and rejecting it here
  // keeps whole-group failure reserved for environmental faults.
  if (tuple.empty()) {
    return Status::InvalidArgument("tuple must have at least one constraint");
  }
  if (index_ != nullptr) {
    CDB_RETURN_IF_ERROR(index_->ValidateForInsert(tuple));
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_ || poisoned_ || queue_.size() >= options_.queue_capacity) {
    ++stats_.shed;
    static obs::Counter* const shed_counter =
        obs::GlobalMetrics().counter("ingest.shed");
    shed_counter->Increment();
    return Status::Unavailable(
        poisoned_ ? "ingest lane failed; reopen to retry"
        : closed_ ? "ingest queue closed"
                  : "ingest queue full");
  }
  Pending p;
  p.tuple = tuple;
  p.state = std::make_shared<IngestHandle::State>();
  IngestHandle handle;
  handle.state_ = p.state;
  queue_.push_back(std::move(p));
  ++stats_.submitted;
  writer_cv_.notify_one();
  return handle;
}

void IngestQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  writer_cv_.notify_all();
}

Status IngestQueue::CommitGroup(std::vector<Pending>* group) {
  static obs::Counter* const groups_counter =
      obs::GlobalMetrics().counter("ingest.groups");
  static obs::Counter* const group_size_counter =
      obs::GlobalMetrics().counter("ingest.group.size");
  static obs::Counter* const group_fsyncs =
      obs::GlobalMetrics().counter("ingest.group.fsyncs");

  const uint64_t commit_t0 =
      options_.publish_latency != nullptr ? clock_->NowNanos() : 0;
  Status st = [&]() -> Status {
    for (Pending& p : *group) {
      Result<TupleId> id = relation_->Insert(p.tuple);
      if (!id.ok()) return id.status();
      if (index_ != nullptr) {
        CDB_RETURN_IF_ERROR(index_->Insert(id.value(), p.tuple));
      }
      // Provisional: the id is acknowledged only after the publish below.
      p.state->id = id.value();
    }
    // The group's single durability point: one journal commit covering
    // every tuple page the group dirtied. A transient write fault here
    // surfaces kUnavailable and fails the whole group.
    CDB_RETURN_IF_ERROR(rel_pager_->Flush());
    group_fsyncs->Increment();
    // Publish order mirrors the PR 4 lane: tuple pages first, then the
    // directory bound that makes them reachable, then the index pages
    // that reference them.
    relation_->PublishAppends();
    if (idx_pager_ != nullptr && idx_pager_ != rel_pager_) {
      CDB_RETURN_IF_ERROR(idx_pager_->Flush());
    }
    return Status::OK();
  }();

  if (!st.ok()) {
    for (Pending& p : *group) {
      Resolve(p.state, st, 0);
    }
    return st;
  }
  if (options_.publish_latency != nullptr) {
    options_.publish_latency->RecordNanos(clock_->NowNanos() - commit_t0);
  }
  groups_counter->Increment();
  group_size_counter->Increment(group->size());
  for (Pending& p : *group) {
    Resolve(p.state, Status::OK(), p.state->id);
  }
  return Status::OK();
}

Status IngestQueue::RunWriter() {
  static obs::Counter* const commit_wait_counter =
      obs::GlobalMetrics().counter("ingest.commit.wait_ns");
  for (;;) {
    std::vector<Pending> group;
    uint64_t waited_ns = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      writer_cv_.wait(lock, [&] { return !queue_.empty() || closed_; });
      if (queue_.empty()) return Status::OK();  // Closed and drained.

      // Bounded group assembly: from the first append seen, wait at most
      // commit_wait_ns (on the injected clock) for the group to fill.
      // Real-time slices keep the loop responsive under a ManualClock.
      if (options_.commit_wait_ns > 0 &&
          queue_.size() < options_.max_group_size && !closed_) {
        const uint64_t t0 = clock_->NowNanos();
        const uint64_t deadline = t0 + options_.commit_wait_ns;
        while (queue_.size() < options_.max_group_size && !closed_ &&
               clock_->NowNanos() < deadline) {
          writer_cv_.wait_for(lock, std::chrono::microseconds(200), [&] {
            return queue_.size() >= options_.max_group_size || closed_;
          });
        }
        waited_ns = clock_->NowNanos() - t0;
      }

      const size_t take = std::min(queue_.size(), options_.max_group_size);
      group.reserve(take);
      for (size_t i = 0; i < take; ++i) {
        group.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      stats_.commit_wait_ns += waited_ns;
    }
    if (waited_ns > 0) commit_wait_counter->Increment(waited_ns);

    Status st = CommitGroup(&group);
    std::lock_guard<std::mutex> lock(mu_);
    if (st.ok()) {
      ++stats_.groups_committed;
      stats_.appends_committed += group.size();
      stats_.max_group_size =
          std::max(stats_.max_group_size, static_cast<uint64_t>(group.size()));
      continue;
    }
    // Whole-group failure poisons the lane: the in-memory relation/index
    // now hold unpublished state the journal never committed, so the only
    // consistent continuation is a reopen (which rolls the journal back).
    // Grouped writes are never retried internally (DESIGN.md §2g/§2i).
    poisoned_ = true;
    ++stats_.groups_failed;
    for (Pending& p : queue_) {
      Resolve(p.state,
              Status::Unavailable("ingest lane failed; reopen to retry"), 0);
      ++stats_.shed;
    }
    queue_.clear();
    return st;
  }
}

IngestQueueStats IngestQueue::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace exec
}  // namespace cdb
