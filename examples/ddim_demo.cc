// Section 4.4 in action: indexing 3-dimensional generalized tuples.
//
// Scenario: a fleet of job configurations over (cpu, mem, time) described
// by linear constraints; a budget hyperplane
//   time θ s1*cpu + s2*mem + b
// asks which configurations fit entirely under the budget (ALL with <=) or
// can fit at all (EXIST). Slope points (s1, s2) form the predefined set S;
// arbitrary budget gradients are answered through the d-dimensional T1
// approximation (convex-combination covering).

#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "dualindex/ddim_index.h"
#include "storage/file.h"
#include "workload/generator.h"

using namespace cdb;

namespace {

void Check(const Status& st) {
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  PagerOptions opts;
  std::unique_ptr<Pager> pager, rel_pager;
  Check(Pager::Open(std::make_unique<MemFile>(opts.page_size), opts, &pager));
  Check(Pager::Open(std::make_unique<MemFile>(opts.page_size), opts,
                    &rel_pager));
  std::unique_ptr<RelationD> relation;
  Check(RelationD::Open(rel_pager.get(), /*dim=*/3, kInvalidPageId,
                        &relation));

  // S: a 3x3 grid of slope points in [-1, 1]^2.
  std::vector<std::vector<double>> slopes;
  for (double s1 : {-1.0, 0.0, 1.0}) {
    for (double s2 : {-1.0, 0.0, 1.0}) {
      slopes.push_back({s1, s2});
    }
  }
  std::unique_ptr<DDimDualIndex> index;
  Check(DDimDualIndex::Create(pager.get(), relation.get(), slopes, &index));

  Rng rng(77);
  const int kJobs = 400;
  for (int i = 0; i < kJobs; ++i) {
    Result<TupleId> id = index->Insert(RandomBoundedTupleD(&rng, 3, 20.0));
    Check(id.status());
  }
  std::printf("indexed %zu 3-D job-configuration tuples over |S| = %zu "
              "slope points\n",
              index->tuple_count(), slopes.size());

  // An exact query (slope point in S) and an approximated one.
  for (const std::vector<double>& slope :
       std::vector<std::vector<double>>{{0.0, 1.0}, {0.35, -0.6}}) {
    HalfPlaneQueryD q;
    q.slope = slope;
    q.intercept = 25.0;
    q.cmp = Cmp::kLE;  // time <= s1*cpu + s2*mem + b : "under budget".
    for (SelectionType type : {SelectionType::kAll, SelectionType::kExist}) {
      QueryStats stats;
      Result<std::vector<TupleId>> r = index->Select(type, q, false, &stats);
      Check(r.status());
      std::printf(
          "%-5s slope=(%.2f, %.2f): %4zu jobs, %3llu index pages%s\n",
          type == SelectionType::kAll ? "ALL" : "EXIST", slope[0], slope[1],
          r.value().size(),
          static_cast<unsigned long long>(stats.index_page_fetches),
          stats.duplicates > 0 ? " (T1 duplicates removed)" : "");
    }
  }
  std::printf("index size: %llu pages\n",
              static_cast<unsigned long long>(index->live_page_count()));
  return 0;
}
