// Operations-research scenario (the paper cites Brodsky et al.'s "Toward
// Practical Constraint Databases" as the motivation for *infinite*
// objects): a catalogue of production models, each stored as the feasible
// region of its linear constraints — many of them unbounded (no upper
// production limits).
//
// Questions a planner asks:
//   ALL(profit >= target): which models are guaranteed to meet a profit
//     line no matter which feasible plan is chosen?
//   EXIST(profit >= target): which models can meet it at all?
//
// With profit = px*x + py*y, "profit >= t" is the half-plane
// y >= -(px/py) x + t/py — exactly a dual-index query. The R+-tree cannot
// even store these tuples (bounding rectangles are infinite), which this
// example demonstrates.

#include <cstdio>
#include <vector>

#include "constraint/parser.h"
#include "dualindex/dual_index.h"
#include "rtree/rplus_tree.h"
#include "storage/file.h"

using namespace cdb;

namespace {

void Check(const Status& st) {
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  PagerOptions opts;
  std::unique_ptr<Pager> rel_pager, idx_pager;
  Check(Pager::Open(std::make_unique<MemFile>(opts.page_size), opts,
                    &rel_pager));
  Check(Pager::Open(std::make_unique<MemFile>(opts.page_size), opts,
                    &idx_pager));

  std::unique_ptr<Relation> models;
  Check(Relation::Open(rel_pager.get(), kInvalidPageId, &models));

  // x = units of product A, y = units of product B.
  struct Model {
    const char* name;
    const char* constraints;
  };
  const std::vector<Model> catalogue = {
      // Bounded plant: machine-hour and storage limits.
      {"plant-small", "x >= 0, y >= 0, 2x + y <= 40, x + 3y <= 60"},
      // Unbounded: contractual minimums, no upper limits.
      {"contract-heavy", "x >= 10, y >= 20"},
      // Unbounded wedge: output ratio constraints only.
      {"ratio-line", "y >= x, y <= 2x, x >= 5"},
      // Bounded premium line.
      {"premium", "x >= 8, x <= 12, y >= 30, y <= 36"},
      // Unbounded strip: fixed A output, open-ended B.
      {"b-specialist", "x >= 1, x <= 3, y >= 0"},
  };
  std::vector<std::string> names;
  for (const Model& m : catalogue) {
    GeneralizedTuple t;
    Check(ParseGeneralizedTuple(m.constraints, &t));
    Result<TupleId> id = models->Insert(t);
    Check(id.status());
    names.push_back(m.name);

    // Show that the R+-tree baseline rejects unbounded feasible regions.
    Rect box;
    if (!t.GetBoundingRect(&box)) {
      std::printf("%-15s unbounded feasible region (R+-tree cannot store "
                  "it)\n",
                  m.name);
    } else {
      std::printf("%-15s bounded: [%.0f,%.0f]x[%.0f,%.0f]\n", m.name,
                  box.xlo, box.xhi, box.ylo, box.yhi);
    }
  }

  std::unique_ptr<DualIndex> index;
  Check(DualIndex::Build(idx_pager.get(), models.get(),
                         SlopeSet({-2.0, -1.0, -0.5, 0.0, 1.0}),
                         DualIndexOptions(), &index));

  // Profit 3x + 2y >= t  <=>  y >= -1.5x + t/2.
  for (double target : {60.0, 150.0}) {
    HalfPlaneQuery q(-1.5, target / 2.0, Cmp::kGE);
    QueryStats stats;
    Result<std::vector<TupleId>> guaranteed =
        index->Select(SelectionType::kAll, q, QueryMethod::kT2, &stats);
    Check(guaranteed.status());
    Result<std::vector<TupleId>> possible =
        index->Select(SelectionType::kExist, q, QueryMethod::kT2, &stats);
    Check(possible.status());

    std::printf("\nprofit 3x + 2y >= %.0f:\n  guaranteed:", target);
    for (TupleId id : guaranteed.value()) {
      std::printf(" %s", names[id].c_str());
    }
    std::printf("\n  possible:  ");
    for (TupleId id : possible.value()) {
      std::printf(" %s", names[id].c_str());
    }
    std::printf("\n");
  }
  std::printf(
      "\nNote: the unbounded models stay 'possible' for every target (their\n"
      "regions escape along the profit gradient) — exactly what window\n"
      "clipping would get wrong (paper Figure 1). Only the dual\n"
      "representation stores them without approximation.\n");
  return 0;
}
