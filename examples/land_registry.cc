// Spatial-database scenario: a land registry stores parcels as convex
// polygons (conjunctions of linear constraints). A planned motorway is a
// line through the region; planners ask
//
//   EXIST: which parcels does the motorway corridor's north edge cross?
//   ALL:   which parcels lie entirely north of the corridor (no
//          expropriation needed)?
//
// Both are half-plane selections — the workload the dual index was designed
// for. The example also runs the same queries through the R+-tree baseline
// and prints both structures' page accesses side by side.

#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "dualindex/dual_index.h"
#include "rtree/rtree_query.h"
#include "storage/file.h"
#include "workload/generator.h"

using namespace cdb;

namespace {

void Check(const Status& st) {
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  PagerOptions opts;
  std::unique_ptr<Pager> rel_pager, dual_pager, rtree_pager;
  Check(Pager::Open(std::make_unique<MemFile>(opts.page_size), opts,
                    &rel_pager));
  Check(Pager::Open(std::make_unique<MemFile>(opts.page_size), opts,
                    &dual_pager));
  Check(Pager::Open(std::make_unique<MemFile>(opts.page_size), opts,
                    &rtree_pager));

  // 2000 random convex parcels in a 100x100 km region.
  std::unique_ptr<Relation> registry;
  Check(Relation::Open(rel_pager.get(), kInvalidPageId, &registry));
  Rng rng(2026);
  WorkloadOptions w;  // Small objects: realistic parcel sizes.
  std::vector<std::pair<Rect, TupleId>> boxes;
  for (int i = 0; i < 2000; ++i) {
    GeneralizedTuple parcel = RandomBoundedTuple(&rng, w);
    Result<TupleId> id = registry->Insert(parcel);
    Check(id.status());
    Rect box;
    parcel.GetBoundingRect(&box);
    boxes.push_back({box, id.value()});
  }
  std::printf("registry: %llu parcels\n",
              static_cast<unsigned long long>(registry->size()));

  // Dual index with 4 precomputed slopes, and the R+-tree for comparison.
  std::unique_ptr<DualIndex> dual;
  Check(DualIndex::Build(dual_pager.get(), registry.get(),
                         SlopeSet::UniformInAngle(4, -0.9, 0.9),
                         DualIndexOptions(), &dual));
  std::unique_ptr<RPlusTree> rtree;
  Check(RPlusTree::BulkBuild(rtree_pager.get(), boxes, &rtree));

  // The motorway's north edge: y = 0.35 x + 12. North side = above.
  HalfPlaneQuery north_of_road(0.35, 12.0, Cmp::kGE);

  struct Ask {
    const char* label;
    SelectionType type;
  };
  for (const Ask& ask : std::vector<Ask>{
           {"parcels crossing or touching the north side (EXIST)",
            SelectionType::kExist},
           {"parcels entirely north of the road (ALL)",
            SelectionType::kAll}}) {
    Check(dual_pager->DropCache());
    Check(rel_pager->DropCache());
    QueryStats dual_stats;
    Result<std::vector<TupleId>> via_dual =
        dual->Select(ask.type, north_of_road, QueryMethod::kT2, &dual_stats);
    Check(via_dual.status());

    Check(rtree_pager->DropCache());
    Check(rel_pager->DropCache());
    QueryStats rtree_stats;
    Result<std::vector<TupleId>> via_rtree = RTreeSelect(
        rtree.get(), registry.get(), ask.type, north_of_road, &rtree_stats);
    Check(via_rtree.status());

    if (via_dual.value() != via_rtree.value()) {
      std::fprintf(stderr, "BUG: structures disagree!\n");
      return 1;
    }
    std::printf(
        "%s:\n  %zu parcels; dual index: %llu index pages; R+-tree: %llu "
        "index pages\n",
        ask.label, via_dual.value().size(),
        static_cast<unsigned long long>(dual_stats.index_page_fetches),
        static_cast<unsigned long long>(rtree_stats.index_page_fetches));
  }

  std::printf("space: dual %llu pages (k=4), R+-tree %llu pages\n",
              static_cast<unsigned long long>(dual->live_page_count()),
              static_cast<unsigned long long>(rtree->live_page_count()));
  return 0;
}
