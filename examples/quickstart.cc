// Quickstart: parse generalized tuples, store them in a relation, build the
// dual index, and run ALL / EXIST half-plane selections.
//
//   cmake --build build && ./build/examples/quickstart

#include <cstdio>
#include <vector>

#include "constraint/parser.h"
#include "dualindex/dual_index.h"
#include "storage/file.h"

using namespace cdb;

namespace {

// Convenience: abort with a message on error (example code only; library
// code propagates Status).
void Check(const Status& st) {
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  // 1. A pager per structure (1 KiB pages, as in the paper).
  PagerOptions opts;
  std::unique_ptr<Pager> rel_pager, idx_pager;
  Check(Pager::Open(std::make_unique<MemFile>(opts.page_size), opts,
                    &rel_pager));
  Check(Pager::Open(std::make_unique<MemFile>(opts.page_size), opts,
                    &idx_pager));

  // 2. A relation of generalized tuples, written in constraint syntax.
  //    Note the last tuple is *unbounded* — a first-class citizen here.
  std::unique_ptr<Relation> relation;
  Check(Relation::Open(rel_pager.get(), kInvalidPageId, &relation));
  const std::vector<std::string> tuple_texts = {
      "x >= 0, y >= 0, x + y <= 4",          // Triangle at the origin.
      "x >= 5, x <= 7, y >= 5, y <= 7",      // A box.
      "x >= -6, y >= -6, y <= -4, x <= -1",  // A flat box, lower left.
      "y >= 2*x + 10, y <= 2*x + 12, x >= 0",  // A slanted strip piece.
      "x <= 2, y >= 3",                      // Paper's unbounded example.
  };
  for (const std::string& text : tuple_texts) {
    GeneralizedTuple tuple;
    Check(ParseGeneralizedTuple(text, &tuple));
    Result<TupleId> id = relation->Insert(tuple);
    Check(id.status());
    std::printf("tuple %u: %s\n", id.value(), text.c_str());
  }

  // 3. Build the dual index: |S| = 3 slopes; two B+-trees per slope.
  std::unique_ptr<DualIndex> index;
  Check(DualIndex::Build(idx_pager.get(), relation.get(),
                         SlopeSet({-1.0, 0.0, 1.0}), DualIndexOptions(),
                         &index));

  // 4. Queries. ALL = extension contained in the half-plane; EXIST =
  //    non-empty intersection. Any slope is allowed (T2 approximation).
  struct Demo {
    const char* text;
    SelectionType type;
  };
  const std::vector<Demo> demos = {
      {"y >= -1", SelectionType::kAll},
      {"y >= -1", SelectionType::kExist},
      {"y <= 0.5*x + 4", SelectionType::kAll},
      {"y >= 0.4*x + 2", SelectionType::kExist},
  };
  for (const Demo& demo : demos) {
    HalfPlaneQuery q;
    Check(ParseHalfPlaneQuery(demo.text, &q));
    QueryStats stats;
    Result<std::vector<TupleId>> r =
        index->Select(demo.type, q, QueryMethod::kAuto, &stats);
    Check(r.status());
    std::printf("%-5s (%s): tuples {",
                demo.type == SelectionType::kAll ? "ALL" : "EXIST",
                demo.text);
    for (size_t i = 0; i < r.value().size(); ++i) {
      std::printf("%s%u", i ? ", " : "", r.value()[i]);
    }
    std::printf("}  [%llu index pages, %llu candidates]\n",
                static_cast<unsigned long long>(stats.index_page_fetches),
                static_cast<unsigned long long>(stats.candidates));
  }

  std::printf("index uses %llu pages of %zu bytes\n",
              static_cast<unsigned long long>(index->live_page_count()),
              idx_pager->page_size());
  return 0;
}
