// Temporal scenario (the paper's framing: "a powerful framework to model
// spatial and *temporal* data"): each tuple is a forecast band over the
// (t = time, v = value) plane — the forecast is valid for a time window and
// bounds the value by linear envelopes (drift, ramps, open-ended windows).
//
// The selections map onto the index's query families:
//   * "which forecasts allow the value to exceed the alert line v >= c·t+b
//     at some moment"            -> EXIST half-plane
//   * "which forecasts stay entirely under the cap"  -> ALL half-plane
//   * "which forecasts are still valid after time T"  -> vertical queries
//   * "which forecasts cross the horizontal band v in [lo, hi] at t = 0
//     slope"                     -> slab selection (footnote 6's intervals)

#include <cstdio>
#include <vector>

#include "constraint/parser.h"
#include "dualindex/dual_index.h"
#include "storage/file.h"

using namespace cdb;

namespace {

void Check(const Status& st) {
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  PagerOptions popts;
  std::unique_ptr<Pager> rel_pager, idx_pager;
  Check(Pager::Open(std::make_unique<MemFile>(popts.page_size), popts,
                    &rel_pager));
  Check(Pager::Open(std::make_unique<MemFile>(popts.page_size), popts,
                    &idx_pager));
  std::unique_ptr<Relation> forecasts;
  Check(Relation::Open(rel_pager.get(), kInvalidPageId, &forecasts));

  // x = hours from now, y = load (MW).
  struct Forecast {
    const char* name;
    const char* band;
  };
  const std::vector<Forecast> bands = {
      // Flat band for the next 24 h.
      {"baseline", "x >= 0, x <= 24, y >= 40, y <= 55"},
      // Morning ramp: rising envelope, valid 0-12 h.
      {"ramp-up", "x >= 0, x <= 12, y >= 2x + 30, y <= 2x + 45"},
      // Evening decay, valid 12-36 h.
      {"decay", "x >= 12, x <= 36, y >= -x + 80, y <= -x + 95"},
      // Open-ended drift: valid from 24 h on, no end (infinite tuple).
      {"drift", "x >= 24, y >= 0.5x + 20, y <= 0.5x + 40"},
      // Peak event, short window.
      {"peak", "x >= 6, x <= 9, y >= 70, y <= 90"},
  };
  std::vector<std::string> names;
  for (const Forecast& f : bands) {
    GeneralizedTuple t;
    Check(ParseGeneralizedTuple(f.band, &t));
    Check(forecasts->Insert(t).status());
    names.push_back(f.name);
  }

  DualIndexOptions opts;
  opts.support_vertical = true;
  std::unique_ptr<DualIndex> index;
  Check(DualIndex::Build(idx_pager.get(), forecasts.get(),
                         SlopeSet({-1.0, 0.0, 0.5, 2.0}), opts, &index));

  auto print_ids = [&](const char* label,
                       const Result<std::vector<TupleId>>& r) {
    Check(r.status());
    std::printf("%-52s:", label);
    for (TupleId id : r.value()) std::printf(" %s", names[id].c_str());
    std::printf("\n");
  };

  // Alert line: v >= 0.5 t + 60 — can the load reach it at any time?
  print_ids("can reach alert line v >= 0.5t + 60 (EXIST)",
            index->Select(SelectionType::kExist,
                          HalfPlaneQuery(0.5, 60, Cmp::kGE),
                          QueryMethod::kT2));
  // Cap: v <= 0.5 t + 70 — which forecasts are guaranteed under it?
  print_ids("guaranteed under cap v <= 0.5t + 70 (ALL)",
            index->Select(SelectionType::kAll,
                          HalfPlaneQuery(0.5, 70, Cmp::kLE),
                          QueryMethod::kT2));
  // Validity horizon: still valid at/after hour 20?
  print_ids("valid at some time t >= 20 (vertical EXIST)",
            index->SelectVertical(SelectionType::kExist, {20.0, Cmp::kGE}));
  print_ids("entirely within the first day t <= 24 (vertical ALL)",
            index->SelectVertical(SelectionType::kAll, {24.0, Cmp::kLE}));
  // Load band: which forecasts intersect v in [50, 60] (slope-0 slab)?
  print_ids("load can sit in the 50-60 MW band (slab EXIST)",
            index->SelectSlab(SelectionType::kExist, 0.0, 50, 60));

  return 0;
}
