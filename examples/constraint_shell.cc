// A tiny constraint-database shell over the ConstraintDatabase facade.
//
// Commands (one per line; '#' starts a comment):
//   insert <constraints>      e.g.  insert x >= 0, y >= 0, x + y <= 4
//   query ALL|EXIST <ineq>    e.g.  query EXIST y >= 2x + 1
//   show <id>                 print a stored tuple
//   delete <id>
//   stats                     relation/index sizes
//
// Run with "-" to read commands from stdin; with no arguments it executes a
// built-in demo script (so the example is runnable unattended).

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "constraint/parser.h"
#include "db/database.h"

using namespace cdb;

namespace {

void RunLine(ConstraintDatabase* db, const std::string& line) {
  std::string trimmed = line;
  size_t pos = trimmed.find('#');
  if (pos != std::string::npos) trimmed.resize(pos);
  std::istringstream in(trimmed);
  std::string cmd;
  if (!(in >> cmd)) return;  // Blank line.
  std::string rest;
  std::getline(in, rest);

  if (cmd == "insert") {
    Result<TupleId> id = db->InsertText(rest);
    if (id.ok()) {
      std::printf("  -> tuple %u\n", id.value());
    } else {
      std::printf("  !! %s\n", id.status().ToString().c_str());
    }
  } else if (cmd == "query") {
    QueryStats stats;
    Result<std::vector<TupleId>> r = db->Query(rest, &stats);
    if (!r.ok()) {
      std::printf("  !! %s\n", r.status().ToString().c_str());
      return;
    }
    std::printf("  -> {");
    for (size_t i = 0; i < r.value().size(); ++i) {
      std::printf("%s%u", i ? ", " : "", r.value()[i]);
    }
    std::printf("}  (%llu index pages)\n",
                static_cast<unsigned long long>(stats.index_page_fetches));
  } else if (cmd == "show") {
    TupleId id = static_cast<TupleId>(std::stoul(rest));
    GeneralizedTuple t;
    Status st = db->Get(id, &t);
    if (st.ok()) {
      std::printf("  -> %s\n", FormatGeneralizedTuple(t).c_str());
    } else {
      std::printf("  !! %s\n", st.ToString().c_str());
    }
  } else if (cmd == "delete") {
    TupleId id = static_cast<TupleId>(std::stoul(rest));
    Status st = db->Delete(id);
    std::printf("  -> %s\n", st.ok() ? "deleted" : st.ToString().c_str());
  } else if (cmd == "explain") {
    Result<std::string> plan = db->Explain(rest);
    if (plan.ok()) {
      std::printf("%s", plan.value().c_str());
    } else {
      std::printf("  !! %s\n", plan.status().ToString().c_str());
    }
  } else if (cmd == "stats") {
    std::printf("  -> %llu tuples, %llu index pages, %llu data pages\n",
                static_cast<unsigned long long>(db->size()),
                static_cast<unsigned long long>(
                    db->index_pager()->live_page_count()),
                static_cast<unsigned long long>(
                    db->relation_pager()->live_page_count()));
  } else {
    std::printf("  !! unknown command '%s'\n", cmd.c_str());
  }
}

const char* kDemoScript[] = {
    "# A few parcels and service areas",
    "insert x >= 0, y >= 0, x + y <= 4",
    "insert x >= 5, x <= 7, y >= 5, y <= 7",
    "insert y >= 2x + 10, y <= 2x + 12, x >= 0",
    "insert x <= 2, y >= 3            # unbounded coverage zone",
    "insert x >= 1, x <= 0            # contradiction: rejected",
    "stats",
    "show 3",
    "query EXIST y >= 6",
    "query ALL y >= -1",
    "query ALL x <= 8",
    "query EXIST x >= 6.5",
    "explain EXIST y >= 0.7x + 2",
    "explain ALL x <= 8",
    "delete 1",
    "query EXIST y >= 6",
};

}  // namespace

int main(int argc, char** argv) {
  DatabaseOptions opts;
  opts.in_memory = true;
  opts.slopes = {-1.0, -0.3, 0.3, 1.0};
  opts.index_options.support_vertical = true;
  std::unique_ptr<ConstraintDatabase> db;
  Status st = ConstraintDatabase::Open("shell", opts, &db);
  if (!st.ok()) {
    std::fprintf(stderr, "open: %s\n", st.ToString().c_str());
    return 1;
  }

  if (argc > 1 && std::string(argv[1]) == "-") {
    std::string line;
    while (std::getline(std::cin, line)) {
      std::printf("> %s\n", line.c_str());
      RunLine(db.get(), line);
    }
  } else {
    for (const char* line : kDemoScript) {
      std::printf("> %s\n", line);
      RunLine(db.get(), line);
    }
  }
  return 0;
}
