#!/usr/bin/env python3
"""Regression gate for cdb bench artifacts (schema cdb-bench/v1).

Usage:
    bench_diff.py BASELINE_DIR CANDIDATE_DIR [options]
    bench_diff.py --self-test

Compares every BENCH_*.json in BASELINE_DIR against the artifact of the
same name in CANDIDATE_DIR. Each value is classified as either

  deterministic -- counts, page-fetch averages, flags: anything the fixed
                   bench seeds pin down exactly. Compared with relative
                   tolerance 1e-9; any drift is a failed gate (it means
                   behaviour changed, not that the machine was busy).

  timing        -- wall-clock-derived keys: suffix _ms/_ns/_us, qps,
                   ns_per_*, *_ratio, and anything listed in _TIMING_KEYS.
                   Skipped by default (CI machines are noisy); with
                   --timing they are compared direction-aware against a
                   noise band (default 0.5, i.e. a candidate may be up to
                   50% worse than baseline before the gate fails; being
                   better never fails). qps is higher-is-better, all other
                   timing keys are lower-is-better.

Per-key band overrides: --band 'PATTERN=F' (fnmatch, first match wins)
where PATTERN is matched against "bench/label/key", "label/key", and
"key". --band 'publish/p99_ms=1.0' allows publish p99 to double.

metrics.counters are deterministic and diffed exactly; gauges and
histograms are reporting surface, not gate surface, and are skipped.

A measurement row or counter present in baseline but missing from the
candidate fails the gate (coverage must not silently shrink); rows only
in the candidate are reported as warnings (new coverage is fine).

Exit status: 0 = gate passed, 1 = regression(s), 2 = usage/IO error.
Stdlib only; `--self-test` runs under ctest as `bench_diff_selftest`.
"""

import fnmatch
import glob
import json
import numbers
import os
import sys

DETERMINISTIC_RTOL = 1e-9
DEFAULT_BAND = 0.5

# Timing classification: suffixes/fragments that mark a value as derived
# from wall-clock time (and therefore machine-dependent). Schedule-dependent
# keys (how reader sessions happened to interleave with an epoch drain) are
# just as machine-dependent, so they ride the same skip/band path.
_TIMING_SUFFIXES = ("_ms", "_ns", "_us", "_ratio")
_TIMING_KEYS = {"qps", "sessions_drained", "appends_per_s"}
_HIGHER_IS_BETTER = {"qps", "appends_per_s"}

# Values deterministic in some benches but schedule-dependent in others,
# as fnmatch patterns against "bench/label/key". online_updates interleaves
# a live writer with the readers, so how many refinement LPs the readers
# ran depends on the interleaving; the same counter is seed-pinned in the
# read-only benches and stays gated there. The fault-hardening tallies
# (ISSUE 7) are likewise scheduling artifacts wherever they appear: which
# worker's queue wait crossed the shed threshold and how many attempts a
# flaky read took are decided by the scheduler, not by the bench seeds.
_SCHEDULE_DEPENDENT = (
    "online_updates/counters/dual.refine.lp_calls",
    "online_updates/counters/refine.batch.*",
    "*/counters/exec.shed.count",
    "*pager.retry.*",
    # ISSUE 10: the time-weighted mean queue depth divides the depth
    # integral (ns-weighted) by the measured wall clock — both numerator
    # and denominator are machine speed. The rest of the stall ledger
    # (depth_high_water, groups, commits_*) is seed-pinned in phase D
    # because every append is queued before the writer starts, and stays
    # gated as deterministic.
    "online_updates/stall/depth_avg",
)

# Deterministic but *directional*: seed-pinned values whose designed
# improvement direction is down (the page-clustered refiner with the
# bounding-box sidecar can only skip relation fetches; the group-commit
# ingest lane can only amortize journal fsyncs further). A decrease is the
# optimisation doing its job and never fails; an increase beyond the
# deterministic tolerance is a regression even without --timing.
_DETERMINISTIC_LOWER_IS_BETTER = (
    "*/refine/pages_per_candidate",
    "refine/pages_per_candidate",
    "*/ingest/group_fsyncs",
    "ingest/group_fsyncs",
    "*ingest.group.fsyncs",
)


def is_timing_key(key):
    if key in _TIMING_KEYS:
        return True
    if any(key.endswith(s) for s in _TIMING_SUFFIXES):
        return True
    return "ns_per" in key


def _is_number(v):
    return isinstance(v, numbers.Real) and not isinstance(v, bool)


def _row_key(m):
    params = m.get("params") or {}
    return (m.get("label", ""),
            tuple(sorted((str(k), float(v)) for k, v in params.items()
                         if _is_number(v))))


def _index_rows(doc):
    """(label, params) -> merged values dict. The harness emits one row
    per AddValue call, so values for the same (label, params) merge."""
    rows = {}
    for m in doc.get("measurements", []):
        if not isinstance(m, dict):
            continue
        values = m.get("values")
        if not isinstance(values, dict):
            continue
        rows.setdefault(_row_key(m), {}).update(
            {k: v for k, v in values.items() if _is_number(v)})
    return rows


def _fmt_key(key):
    label, params = key
    if not params:
        return label
    return label + "[" + ",".join(f"{k}={v:g}" for k, v in params) + "]"


class Gate:
    def __init__(self, timing, bands, schedule=_SCHEDULE_DEPENDENT):
        self.timing = timing        # compare timing keys at all?
        self.bands = bands          # [(pattern, band), ...] first match wins
        self.schedule = schedule    # "bench/label/key" fnmatch patterns
        self.failures = []
        self.warnings = []
        self.compared = 0
        self.skipped_timing = 0

    def band_for(self, bench, label, key):
        candidates = (f"{bench}/{label}/{key}", f"{label}/{key}", key)
        for pattern, band in self.bands:
            if any(fnmatch.fnmatch(c, pattern) for c in candidates):
                return band
        return DEFAULT_BAND

    def is_schedule_dependent(self, bench, label, key):
        path = f"{bench}/{label}/{key}"
        return any(fnmatch.fnmatch(path, p) for p in self.schedule)

    def is_deterministic_directional(self, bench, label, key):
        candidates = (f"{bench}/{label}/{key}", f"{label}/{key}", key)
        return any(fnmatch.fnmatch(c, p)
                   for p in _DETERMINISTIC_LOWER_IS_BETTER
                   for c in candidates)

    def compare_value(self, where, bench, label, key, base, cand):
        self.compared += 1
        if is_timing_key(key) or self.is_schedule_dependent(bench, label, key):
            if not self.timing:
                self.skipped_timing += 1
                return
            band = self.band_for(bench, label, key)
            if key in _HIGHER_IS_BETTER:
                floor = base * (1.0 - band)
                if cand < floor:
                    self.failures.append(
                        f"{where}: {key} fell {base:g} -> {cand:g} "
                        f"(> {band:.0%} below baseline)")
            else:
                ceiling = base * (1.0 + band)
                if base >= 0 and cand > ceiling:
                    self.failures.append(
                        f"{where}: {key} rose {base:g} -> {cand:g} "
                        f"(> {band:.0%} above baseline)")
            return
        tol = DETERMINISTIC_RTOL * max(abs(base), abs(cand), 1.0)
        if self.is_deterministic_directional(bench, label, key):
            # Seed-pinned, lower-is-better: improvement passes, any rise
            # beyond the deterministic tolerance fails (no --timing needed).
            if cand > base + tol:
                self.failures.append(
                    f"{where}: directional {key} rose {base!r} -> {cand!r} "
                    "(deterministic, lower is better)")
            return
        # Deterministic: the seeds pin this down; any drift is a behaviour
        # change that must be explained by refreshing the baseline.
        if abs(cand - base) > tol:
            self.failures.append(
                f"{where}: deterministic {key} changed {base!r} -> {cand!r}")

    def compare_rows(self, bench, base_rows, cand_rows):
        for key, base_values in sorted(base_rows.items()):
            where = f"{bench}: {_fmt_key(key)}"
            cand_values = cand_rows.get(key)
            if cand_values is None:
                self.failures.append(f"{where}: row missing from candidate")
                continue
            for vkey, base in sorted(base_values.items()):
                if vkey not in cand_values:
                    self.failures.append(
                        f"{where}: value {vkey} missing from candidate")
                    continue
                self.compare_value(where, bench, key[0], vkey, base,
                                   cand_values[vkey])
        for key in sorted(set(cand_rows) - set(base_rows)):
            self.warnings.append(
                f"{bench}: candidate-only row {_fmt_key(key)} "
                "(not gated; refresh the baseline to gate it)")

    def compare_counters(self, bench, base_doc, cand_doc):
        base = (base_doc.get("metrics") or {}).get("counters") or {}
        cand = (cand_doc.get("metrics") or {}).get("counters") or {}
        for name, bv in sorted(base.items()):
            if not _is_number(bv):
                continue
            if name not in cand:
                self.failures.append(
                    f"{bench}: counter {name} missing from candidate")
                continue
            self.compare_value(f"{bench}: counter", bench, "counters", name,
                               bv, cand[name])
        for name in sorted(set(cand) - set(base)):
            self.warnings.append(f"{bench}: candidate-only counter {name}")

    def compare_docs(self, bench, base_doc, cand_doc):
        self.compare_rows(bench, _index_rows(base_doc), _index_rows(cand_doc))
        self.compare_counters(bench, base_doc, cand_doc)


def _load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def run_diff(baseline_dir, candidate_dir, gate):
    base_paths = sorted(glob.glob(os.path.join(baseline_dir, "BENCH_*.json")))
    if not base_paths:
        print(f"bench_diff: no BENCH_*.json under {baseline_dir}",
              file=sys.stderr)
        return 2
    for base_path in base_paths:
        name = os.path.basename(base_path)
        cand_path = os.path.join(candidate_dir, name)
        if not os.path.exists(cand_path):
            gate.failures.append(f"{name}: missing from candidate dir")
            continue
        try:
            base_doc = _load(base_path)
            cand_doc = _load(cand_path)
        except (OSError, json.JSONDecodeError) as e:
            print(f"bench_diff: {e}", file=sys.stderr)
            return 2
        gate.compare_docs(base_doc.get("bench", name), base_doc, cand_doc)
    base_names = {os.path.basename(p) for p in base_paths}
    for cand_path in sorted(
            glob.glob(os.path.join(candidate_dir, "BENCH_*.json"))):
        if os.path.basename(cand_path) not in base_names:
            gate.warnings.append(
                f"{os.path.basename(cand_path)}: candidate-only artifact")
    for w in gate.warnings:
        print(f"warning: {w}")
    for f in gate.failures:
        print(f"FAIL: {f}", file=sys.stderr)
    verdict = "FAILED" if gate.failures else "passed"
    print(f"bench_diff {verdict}: {gate.compared} values compared, "
          f"{gate.skipped_timing} timing values skipped, "
          f"{len(gate.failures)} regression(s), "
          f"{len(gate.warnings)} warning(s)")
    return 1 if gate.failures else 0


def _parse_bands(specs):
    bands = []
    for spec in specs:
        pattern, sep, value = spec.partition("=")
        if not sep or not pattern:
            raise ValueError(f"--band wants PATTERN=FLOAT, got {spec!r}")
        bands.append((pattern, float(value)))
    return bands


def self_test():
    base = {
        "schema": "cdb-bench/v1", "bench": "demo",
        "measurements": [
            {"label": "warm", "params": {"threads": 1},
             "values": {"qps": 100.0, "queries": 256, "failed": 0}},
            {"label": "latency", "params": {"threads": 1},
             "values": {"count": 256, "p50_ms": 2.0, "p99_ms": 6.0}},
            {"label": "t2/exist", "params": {"n": 2000},
             "values": {"index_fetches": 12.5}},
            {"label": "refine", "params": {"batched": 1},
             "values": {"pages_per_candidate": 0.15, "candidates": 7200}},
            {"label": "ingest", "params": {"group": 64},
             "values": {"appends": 2048, "groups": 32, "group_fsyncs": 32,
                        "appends_per_s": 2300000.0}},
        ],
        "metrics": {"counters": {"dual.refine.lp_calls": 4181},
                    "gauges": {"noise": 1}, "histograms": {}},
    }
    import copy
    failures = []
    scenarios = [0]

    def run(mutate, timing, bands, expect_fail, what):
        scenarios[0] += 1
        cand = copy.deepcopy(base)
        mutate(cand)
        gate = Gate(timing, bands)
        gate.compare_docs("demo", base, cand)
        if bool(gate.failures) != expect_fail:
            failures.append(
                f"{what}: {'unexpected ' + repr(gate.failures) if gate.failures else 'expected a failure, got none'}")

    run(lambda d: None, False, [], False, "identical artifacts")
    run(lambda d: None, True, [], False, "identical artifacts with --timing")
    run(lambda d: d["measurements"][2]["values"].update(index_fetches=13.0),
        False, [], True, "deterministic drift")
    run(lambda d: d["measurements"][0]["values"].update(qps=30.0),
        False, [], False, "timing drift ignored without --timing")
    run(lambda d: d["measurements"][0]["values"].update(qps=30.0),
        True, [], True, "qps collapse caught with --timing")
    run(lambda d: d["measurements"][0]["values"].update(qps=140.0),
        True, [], False, "qps improvement never fails")
    run(lambda d: d["measurements"][1]["values"].update(p99_ms=30.0),
        True, [], True, "latency blow-up caught with --timing")
    run(lambda d: d["measurements"][1]["values"].update(p99_ms=3.0),
        True, [], False, "latency improvement never fails")
    run(lambda d: d["measurements"][1]["values"].update(p99_ms=30.0),
        True, [("latency/p99_ms", 9.0)], False, "--band override widens")
    run(lambda d: d["measurements"].pop(1), False, [], True,
        "missing row fails")
    run(lambda d: d["measurements"][1]["values"].pop("count"), False, [],
        True, "missing value fails")
    run(lambda d: d["measurements"].append(
        {"label": "extra", "params": {}, "values": {"x": 1}}),
        False, [], False, "candidate-only row only warns")
    run(lambda d: d["metrics"]["counters"].update({"dual.refine.lp_calls": 9}),
        False, [], True, "counter drift fails")
    run(lambda d: d["metrics"]["counters"].pop("dual.refine.lp_calls"),
        False, [], True, "missing counter fails")
    run(lambda d: d["metrics"]["gauges"].update(noise=999), False, [], False,
        "gauges are not gated")
    run(lambda d: d["measurements"][3]["values"].update(
        pages_per_candidate=0.10),
        False, [], False, "directional pages_per_candidate improvement passes")
    run(lambda d: d["measurements"][3]["values"].update(
        pages_per_candidate=0.20),
        False, [], True, "directional pages_per_candidate rise fails")
    run(lambda d: d["measurements"][3]["values"].update(candidates=7300),
        False, [], True, "refine candidates stay exactly gated")
    run(lambda d: d["measurements"][4]["values"].update(
        appends_per_s=1000000.0),
        False, [], False, "ingest throughput ignored without --timing")
    run(lambda d: d["measurements"][4]["values"].update(
        appends_per_s=1000000.0),
        True, [], True, "ingest throughput collapse caught with --timing")
    run(lambda d: d["measurements"][4]["values"].update(
        appends_per_s=3000000.0),
        True, [], False, "ingest throughput improvement never fails")
    run(lambda d: d["measurements"][4]["values"].update(group_fsyncs=16),
        False, [], False, "directional group_fsyncs improvement passes")
    run(lambda d: d["measurements"][4]["values"].update(group_fsyncs=33),
        False, [], True, "directional group_fsyncs rise fails")
    run(lambda d: d["measurements"][4]["values"].update(groups=33),
        False, [], True, "ingest group count stays exactly gated")
    base["measurements"][1]["values"]["sessions_drained"] = 8
    run(lambda d: d["measurements"][1]["values"].update(sessions_drained=0),
        False, [], False, "schedule-dependent key ignored without --timing")
    base["metrics"]["counters"]["exec.shed.count"] = 3
    base["metrics"]["counters"]["pager.retry.read_retries"] = 2
    run(lambda d: d["metrics"]["counters"].update({"exec.shed.count": 7}),
        False, [], False, "shed counter rides the schedule-dependent path")
    run(lambda d: d["metrics"]["counters"].update(
        {"pager.retry.read_retries": 5}),
        False, [], False, "pager retry counters are schedule-dependent")

    # ISSUE 10 write-path pipeline rows: stage/visibility digests are
    # timing (auto-skipped via the _ms suffix), the trigger ledger and
    # stage counts are deterministic, and depth_avg rides the
    # schedule-dependent path for online_updates.
    base["measurements"].append(
        {"label": "stall", "params": {"group": 32},
         "values": {"groups": 8, "commits_full": 8, "commits_deadline": 0,
                    "commits_drain": 0, "depth_high_water": 256,
                    "depth_avg": 105.8}})
    base["measurements"].append(
        {"label": "pipeline_fsync", "params": {"group": 32},
         "values": {"count": 256, "sum_ms": 50.0, "p99_ms": 1.9}})
    run(lambda d: d["measurements"][5]["values"].update(commits_full=7,
                                                        commits_drain=1),
        False, [], True, "commit-trigger ledger stays exactly gated")
    run(lambda d: d["measurements"][5]["values"].update(depth_high_water=9),
        False, [], True, "depth high-water stays exactly gated")
    run(lambda d: d["measurements"][6]["values"].update(count=255),
        False, [], True, "pipeline stage count stays exactly gated")
    run(lambda d: d["measurements"][6]["values"].update(sum_ms=500.0),
        False, [], False, "pipeline stage sums ignored without --timing")
    run(lambda d: d["measurements"][6]["values"].update(sum_ms=500.0),
        True, [], True, "pipeline stage sum blow-up caught with --timing")
    cand = copy.deepcopy(base)
    cand["measurements"][5]["values"]["depth_avg"] = 2.0
    scenarios[0] += 2
    gate = Gate(False, [], schedule=("demo/stall/depth_avg",))
    gate.compare_docs("demo", base, cand)
    if gate.failures:
        failures.append(f"schedule-dependent depth_avg still gated: "
                        f"{gate.failures!r}")
    gate = Gate(False, [])
    gate.compare_docs("demo", base, cand)
    if not gate.failures:
        failures.append("depth_avg pattern for online_updates must not "
                        "skip under another bench name")

    # Per-bench schedule-dependent counters skip the deterministic gate
    # only for the bench that matches the pattern.
    cand = copy.deepcopy(base)
    cand["metrics"]["counters"]["dual.refine.lp_calls"] = 9
    scenarios[0] += 2
    gate = Gate(False, [], schedule=("demo/counters/dual.refine.lp_calls",))
    gate.compare_docs("demo", base, cand)
    if gate.failures:
        failures.append(f"schedule-dependent counter still gated: "
                        f"{gate.failures!r}")
    gate = Gate(False, [], schedule=("other/counters/dual.refine.lp_calls",))
    gate.compare_docs("demo", base, cand)
    if not gate.failures:
        failures.append("counter pattern for another bench must not skip")

    if failures:
        for f in failures:
            print(f"SELF-TEST FAIL: {f}", file=sys.stderr)
        return 1
    print(f"self-test OK ({scenarios[0]} scenarios)")
    return 0


def main(argv):
    if len(argv) >= 2 and argv[1] == "--self-test":
        return self_test()
    args = []
    timing = False
    band_specs = []
    it = iter(argv[1:])
    for arg in it:
        if arg == "--timing":
            timing = True
        elif arg == "--band":
            band_specs.append(next(it, ""))
        elif arg.startswith("--band="):
            band_specs.append(arg[len("--band="):])
        elif arg.startswith("-"):
            print(__doc__, file=sys.stderr)
            return 2
        else:
            args.append(arg)
    if len(args) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    try:
        bands = _parse_bands(band_specs)
    except ValueError as e:
        print(f"bench_diff: {e}", file=sys.stderr)
        return 2
    return run_diff(args[0], args[1], Gate(timing, bands))


if __name__ == "__main__":
    sys.exit(main(sys.argv))
