#!/usr/bin/env sh
# Configure an ASan+UBSan build in build-asan/ and run the storage /
# durability test suites under it (`ctest -L sanitize`). These are the
# suites that exercise raw page buffers, journal replay, and fault
# injection — the places where a latent out-of-bounds write or
# use-after-evict would hide.
#
# Usage: scripts/run_sanitized.sh [extra ctest args...]
set -eu

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="$repo/build-asan"

cmake -S "$repo" -B "$build" -G Ninja \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCDB_SANITIZE=address,undefined
cmake --build "$build"

ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1:strict_string_checks=1}" \
UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}" \
  ctest --test-dir "$build" -L sanitize --output-on-failure "$@"
