#!/usr/bin/env sh
# Configure a sanitizer build and run the test suites that need it.
#
#   scripts/run_sanitized.sh [asan|tsan] [extra ctest args...]
#
# asan (default): ASan+UBSan in build-asan/, runs `ctest -L sanitize` —
#   the storage / durability suites that exercise raw page buffers,
#   journal replay, and fault injection, where a latent out-of-bounds
#   write or use-after-evict would hide.
# tsan: ThreadSanitizer in build-tsan/, runs `ctest -L tsan` — the
#   concurrent-read pager, executor, and metrics suites (ISSUE 3), where a
#   data race on the sharded buffer pool or the stats plumbing would hide.
#   TSan cannot be combined with ASan, hence the separate build tree.
set -eu

repo="$(cd "$(dirname "$0")/.." && pwd)"

mode="asan"
if [ "$#" -gt 0 ]; then
  case "$1" in
    asan|tsan) mode="$1"; shift ;;
  esac
fi

if [ "$mode" = "tsan" ]; then
  build="$repo/build-tsan"
  cmake -S "$repo" -B "$build" -G Ninja \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCDB_SANITIZE=thread
  cmake --build "$build"
  TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1:second_deadlock_stack=1}" \
    ctest --test-dir "$build" -L tsan --output-on-failure "$@"
else
  build="$repo/build-asan"
  cmake -S "$repo" -B "$build" -G Ninja \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCDB_SANITIZE=address,undefined
  cmake --build "$build"
  ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1:strict_string_checks=1}" \
  UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}" \
    ctest --test-dir "$build" -L sanitize --output-on-failure "$@"
fi
