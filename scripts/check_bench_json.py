#!/usr/bin/env python3
"""Validator for cdb bench artifacts (BENCH_*.json, schema cdb-bench/v1).

Usage:
    check_bench_json.py FILE [FILE ...]   validate artifacts, exit non-zero
                                          on the first structural violation
    check_bench_json.py --self-test       run the embedded good/bad corpus

The schema (see bench/harness.h):

    {"schema": "cdb-bench/v1",
     "bench": "<name>",
     "measurements": [{"label": "<str>",
                       "params": {"<k>": <number>, ...},
                       "values": {"<k>": <number>, ...}}, ...],
     "metrics": {"counters": {"<name>": <int>, ...},
                 "gauges": {"<name>": <number>, ...},
                 "histograms": {"<name>": {"bounds": [...], "counts": [...],
                                           "count": <int>, "sum": <number>},
                                ...}}}

Stdlib only; runs under the ctest entry `check_bench_json_selftest`.
"""

import json
import numbers
import sys

SCHEMA = "cdb-bench/v1"


def _is_number(v):
    return isinstance(v, numbers.Real) and not isinstance(v, bool)


def _check_number_map(obj, where, errors):
    if not isinstance(obj, dict):
        errors.append(f"{where}: expected an object")
        return
    for key, value in obj.items():
        if not _is_number(value):
            errors.append(f"{where}.{key}: expected a number, got {value!r}")


# Phase keys of the filter-precision accounting (bench/harness.h): when a
# row carries all of them plus candidates, they must partition candidates.
_FILTER_PHASE_KEYS = ("dedup_dropped", "early_accepts", "refine_accepts",
                      "refine_rejects")


def _check_filter_precision(where, values, errors):
    """Generic filter-precision rules (ISSUE 6), applied to any row that
    carries the keys: precision lies in (0, 1], the filter can only
    over-approximate (candidates >= results), and the per-phase counts sum
    to candidates exactly (up to averaging round-off)."""
    precision = values.get("precision")
    if precision is not None and _is_number(precision):
        if not 0 < precision <= 1:
            errors.append(
                f"{where}.precision: {precision!r} outside (0, 1] "
                "(results/candidates cannot leave that range)")
    candidates = values.get("candidates")
    results = values.get("results")
    if _is_number(candidates) and _is_number(results):
        if candidates < results - 1e-9 * max(1.0, results):
            errors.append(
                f"{where}: candidates {candidates!r} < results {results!r} "
                "(the filter step must over-approximate)")
        phases = [values.get(k) for k in _FILTER_PHASE_KEYS]
        if all(_is_number(p) for p in phases):
            total = sum(phases)
            if abs(candidates - total) > 1e-6 * max(1.0, candidates):
                errors.append(
                    f"{where}: phase counts sum to {total!r} but candidates "
                    f"say {candidates!r} (every candidate must meet exactly "
                    "one fate)")


def _check_overload_ledger(where, values, errors):
    """Overload-control ledger (ISSUE 7), applied to any row carrying the
    full set of keys: every submitted query must be accounted for exactly
    once — shed (at admission or by the queue-wait rung) or completed."""
    submitted = values.get("submitted")
    completed = values.get("completed")
    shed = values.get("shed")
    if not all(_is_number(v) for v in (submitted, completed, shed)):
        return
    if abs((shed + completed) - submitted) > 1e-9 * max(1.0, abs(submitted)):
        errors.append(
            f"{where}: shed {shed!r} + completed {completed!r} != "
            f"submitted {submitted!r} (every query must be shed or served)")


def _check_measurement(i, m, errors):
    where = f"measurements[{i}]"
    if not isinstance(m, dict):
        errors.append(f"{where}: expected an object")
        return
    label = m.get("label")
    if not isinstance(label, str) or not label:
        errors.append(f"{where}.label: expected a non-empty string")
    _check_number_map(m.get("params"), f"{where}.params", errors)
    values = m.get("values")
    _check_number_map(values, f"{where}.values", errors)
    if isinstance(values, dict) and not values:
        errors.append(f"{where}.values: empty (a measurement must measure)")
    if isinstance(values, dict):
        _check_filter_precision(f"{where}.values", values, errors)
        _check_overload_ledger(f"{where}.values", values, errors)


def _check_histogram(name, h, errors):
    where = f"metrics.histograms.{name}"
    if not isinstance(h, dict):
        errors.append(f"{where}: expected an object")
        return
    bounds = h.get("bounds")
    counts = h.get("counts")
    if not isinstance(bounds, list) or not all(_is_number(b) for b in bounds):
        errors.append(f"{where}.bounds: expected an array of numbers")
        return
    if bounds != sorted(bounds) or len(set(bounds)) != len(bounds):
        errors.append(f"{where}.bounds: not strictly increasing")
    if not isinstance(counts, list) or not all(_is_number(c) for c in counts):
        errors.append(f"{where}.counts: expected an array of numbers")
        return
    # One overflow bucket beyond the explicit bounds.
    if len(counts) != len(bounds) + 1:
        errors.append(
            f"{where}: {len(counts)} counts for {len(bounds)} bounds "
            f"(want bounds+1)")
    if not _is_number(h.get("count")):
        errors.append(f"{where}.count: expected a number")
    elif isinstance(counts, list) and sum(counts) != h["count"]:
        errors.append(f"{where}: bucket counts sum to {sum(counts)}, "
                      f"count says {h['count']}")
    if not _is_number(h.get("sum")):
        errors.append(f"{where}.sum: expected a number")


def _check_refine_rows(bench, doc, errors):
    """Refinement-substrate rules (ISSUE 8): the artifact must carry a
    scalar (batched=0) and a batched (batched=1) "refine" row for every
    measured configuration, each with positive ns_per_candidate and a
    non-negative pages_per_candidate; page clustering plus the bounding-box
    sidecar can only *skip* fetches, so the batched physical page count per
    candidate must never exceed the scalar one, and both modes must accept
    the identical (seed-pinned) candidate count."""
    rows = {}
    for m in doc.get("measurements", []):
        if not isinstance(m, dict) or m.get("label") != "refine":
            continue
        params = m.get("params")
        values = m.get("values")
        if not isinstance(params, dict) or not isinstance(values, dict):
            continue
        batched = params.get("batched")
        if batched not in (0, 1):
            errors.append(f"{bench}: refine row without a batched=0|1 param")
            continue
        coords = tuple(sorted((k, v) for k, v in params.items()
                              if k != "batched"))
        rows.setdefault(coords, {}).setdefault(batched, {}).update(
            {k: v for k, v in values.items() if _is_number(v)})
    if not rows:
        errors.append(f"{bench}: no refine substrate rows "
                      "(ns_per_candidate/pages_per_candidate)")
        return
    for coords, modes in sorted(rows.items()):
        at = f"refine[{coords}]" if coords else "refine"
        missing = [b for b in (0, 1) if b not in modes]
        if missing:
            errors.append(f"{bench}: {at} missing batched={missing} row(s)")
            continue
        for b in (0, 1):
            ns = modes[b].get("ns_per_candidate")
            pages = modes[b].get("pages_per_candidate")
            if not _is_number(ns) or ns <= 0:
                errors.append(
                    f"{bench}: {at} batched={b} ns_per_candidate {ns!r} "
                    "(must be a positive number)")
            if not _is_number(pages) or pages < 0:
                errors.append(
                    f"{bench}: {at} batched={b} pages_per_candidate "
                    f"{pages!r} (must be a non-negative number)")
        scalar_pages = modes[0].get("pages_per_candidate")
        batched_pages = modes[1].get("pages_per_candidate")
        if (_is_number(scalar_pages) and _is_number(batched_pages) and
                batched_pages > scalar_pages * (1 + 1e-9)):
            errors.append(
                f"{bench}: {at} batched pages_per_candidate {batched_pages!r} "
                f"exceeds scalar {scalar_pages!r} (clustering must only "
                "skip fetches, never add them)")
        if modes[0].get("accepts") != modes[1].get("accepts"):
            errors.append(
                f"{bench}: {at} accepts differ between scalar "
                f"({modes[0].get('accepts')!r}) and batched "
                f"({modes[1].get('accepts')!r}); the batched refiner "
                "changed a decision")


# Warm fetches never recompute the CRC (verification happens on physical
# reads only), so the checksummed warm path must stay within 15% of raw.
WARM_OVERHEAD_BUDGET = 1.15


def _check_micro_substrates(doc, errors):
    """Semantic rule for the micro_substrates artifact: the durability
    layer's warm-path checksum overhead must be present and within budget."""
    ratio = None
    for m in doc.get("measurements", []):
        if not isinstance(m, dict) or m.get("label") != "pager_fetch_warm":
            continue
        values = m.get("values")
        if isinstance(values, dict) and "checksum_overhead_ratio" in values:
            ratio = values["checksum_overhead_ratio"]
    if ratio is None:
        errors.append("micro_substrates: no pager_fetch_warm "
                      "checksum_overhead_ratio measurement")
    elif not _is_number(ratio) or ratio > WARM_OVERHEAD_BUDGET:
        errors.append(
            f"micro_substrates: warm checksum_overhead_ratio {ratio!r} "
            f"exceeds budget {WARM_OVERHEAD_BUDGET}")
    _check_refine_rows("micro_substrates", doc, errors)


def _check_percentile_order(bench, where, values, errors,
                            required=("p50_ms", "p95_ms", "p99_ms")):
    """Percentile keys that are present must be numeric and non-decreasing
    in rank order; the `required` ones must be present."""
    order = ("p50_ms", "p90_ms", "p95_ms", "p99_ms", "max_ms")
    for key in required:
        if key not in values:
            errors.append(f"{bench}: {where} missing {key}")
            return
    series = [(k, values[k]) for k in order if k in values]
    for key, v in series:
        if not _is_number(v):
            errors.append(f"{bench}: {where}.{key} is not a number: {v!r}")
            return
    for (ka, va), (kb, vb) in zip(series, series[1:]):
        if va > vb:
            errors.append(
                f"{bench}: {where} percentiles out of order "
                f"({ka}={va} > {kb}={vb})")
            return


# Going from 1 to 2 worker threads must not *lose* throughput. On a
# single-core machine the parallel path cannot speed anything up, so the
# rule only demands the warm curve stays within a scheduler-noise floor of
# flat — it is a regression guard against lock contention on the sharded
# pool, not a speedup claim (the bench measures honestly; see ISSUE 3).
SCALING_NOISE_FLOOR = 0.9


def _check_throughput_scaling(doc, errors):
    """Semantic rules for the throughput_scaling artifact: the 1-thread
    executor must reproduce serial accounting exactly, no query may fail,
    warm throughput must be monotone (within noise) from 1 to 2 threads,
    and every measured thread count must carry service-latency, queue-wait,
    and trace-sampling rows with internally consistent values (ISSUE 5)."""
    warm_qps = {}
    warm_queries = {}
    obs_rows = {"latency": {}, "queue_wait": {}, "sampling": {}}
    accounting = None
    overload = None
    for m in doc.get("measurements", []):
        if not isinstance(m, dict):
            continue
        values = m.get("values")
        if not isinstance(values, dict):
            continue
        params = m.get("params")
        threads = params.get("threads") if isinstance(params, dict) else None
        if m.get("label") == "accounting":
            accounting = values.get("accounting_match")
        if m.get("label") == "overload":
            overload = values
        if m.get("label") in ("warm", "cold"):
            failed = values.get("failed")
            if _is_number(failed) and failed != 0:
                errors.append(
                    f"throughput_scaling: {m.get('label')} run reports "
                    f"{failed} failed queries")
        if m.get("label") == "warm":
            if _is_number(threads) and _is_number(values.get("qps")):
                warm_qps[threads] = values["qps"]
            if _is_number(threads) and _is_number(values.get("queries")):
                warm_queries[threads] = values["queries"]
        if m.get("label") in obs_rows and _is_number(threads):
            obs_rows[m.get("label")].setdefault(threads, {}).update(
                {k: v for k, v in values.items() if _is_number(v)})
    for threads, queries in sorted(warm_queries.items()):
        t = f"threads={threads:g}"
        lat = obs_rows["latency"].get(threads)
        wait = obs_rows["queue_wait"].get(threads)
        samp = obs_rows["sampling"].get(threads)
        if lat is None or wait is None or samp is None:
            errors.append(
                f"throughput_scaling: missing latency/queue_wait/sampling "
                f"rows for {t}")
            continue
        for name, row in (("latency", lat), ("queue_wait", wait)):
            if row.get("count") != queries:
                errors.append(
                    f"throughput_scaling: {name}[{t}].count "
                    f"{row.get('count')!r} != batch size {queries:g} "
                    "(every query must be recorded exactly once)")
            _check_percentile_order("throughput_scaling", f"{name}[{t}]",
                                    row, errors)
        sampled = samp.get("sampled")
        balanced = samp.get("balanced")
        if not _is_number(sampled) or sampled <= 0:
            errors.append(
                f"throughput_scaling: sampling[{t}].sampled {sampled!r} "
                "(deterministic 1-in-N sampling must trace something)")
        elif balanced != sampled:
            errors.append(
                f"throughput_scaling: sampling[{t}] {balanced!r} of "
                f"{sampled!r} sampled traces balanced (self==total "
                "invariant broken)")
    if overload is None:
        errors.append(
            "throughput_scaling: no overload ledger row (the bench must "
            "exercise admission shedding and account for every query)")
    elif not all(_is_number(overload.get(k))
                 for k in ("submitted", "completed", "shed")):
        errors.append(
            "throughput_scaling: overload row must carry numeric "
            "submitted/completed/shed")
    _check_refine_rows("throughput_scaling", doc, errors)
    if accounting is None:
        errors.append("throughput_scaling: no accounting_match measurement")
    elif accounting != 1:
        errors.append(
            "throughput_scaling: 1-thread executor accounting diverged "
            f"from serial Select (accounting_match={accounting!r})")
    if 1 not in warm_qps or 2 not in warm_qps:
        errors.append("throughput_scaling: missing warm qps for "
                      "threads=1 and threads=2")
        return
    if warm_qps[2] < SCALING_NOISE_FLOOR * warm_qps[1]:
        errors.append(
            f"throughput_scaling: warm qps dropped from {warm_qps[1]:.0f} "
            f"(1 thread) to {warm_qps[2]:.0f} (2 threads); below the "
            f"{SCALING_NOISE_FLOOR} noise floor, so the parallel path is "
            "losing throughput to contention")


# Incremental handicap maintenance must keep T2's cost (logical index
# fetches + physical refinement reads, decision 11) within this factor of a
# freshly rebuilt index — and strictly below the stale index it replaces,
# otherwise the maintenance isn't paying for itself.
ONLINE_T2_BUDGET = 1.2


# Ingest throughput is schedule-dependent (bench_diff skips it without
# --timing); the semantic rule here is directional only: every grouped
# size must beat single-append commits, and adjacent sizes must not
# *collapse* (large groups may plateau or dip on a busy machine — the
# full run has shown group 256 ~11% under group 64 — but a halving means
# the amortization broke). The per-group fsync bound is exact.
INGEST_NOISE_FLOOR = 0.5


def _check_ingest_rows(ingest, errors):
    """Group-commit ingest lane (ISSUE 9): every committed group paid at
    most one journal fsync, group counts are exact for the append count,
    publish-latency percentiles are ordered, and writer throughput rises
    with the group size."""
    if not ingest:
        errors.append("online_updates: no group-commit ingest measurements")
        return
    if len(ingest) < 2:
        errors.append("online_updates: ingest rows cover a single group "
                      "size; the amortization claim needs at least two")
        return
    for g in sorted(ingest):
        v = ingest[g]
        missing = [k for k in ("appends", "groups", "group_fsyncs",
                               "appends_per_s") if k not in v]
        if missing:
            errors.append(
                f"online_updates: ingest group {g:.0f} missing {missing}")
            return
        expected = -(-v["appends"] // g)  # ceil division
        if v["groups"] != expected:
            errors.append(
                f"online_updates: ingest group {g:.0f} committed "
                f"{v['groups']:.0f} groups for {v['appends']:.0f} appends "
                f"(expected {expected:.0f})")
        if v["group_fsyncs"] > v["groups"]:
            errors.append(
                f"online_updates: ingest group {g:.0f} paid "
                f"{v['group_fsyncs']:.0f} journal fsyncs for "
                f"{v['groups']:.0f} groups (more than one per group)")
        if v["group_fsyncs"] < 1:
            errors.append(
                f"online_updates: ingest group {g:.0f} reports no journal "
                "fsync at all")
        percentiles = {k[len("publish_"):]: val for k, val in v.items()
                       if k.startswith("publish_")}
        _check_percentile_order("online_updates",
                                f"ingest[group={g:.0f}]", percentiles,
                                errors)
    sizes = sorted(ingest)
    for ga, gb in zip(sizes, sizes[1:]):
        fa, fb = ingest[ga]["group_fsyncs"], ingest[gb]["group_fsyncs"]
        if fb >= fa:
            errors.append(
                f"online_updates: ingest fsyncs did not amortize from group "
                f"{ga:.0f} ({fa:.0f}) to group {gb:.0f} ({fb:.0f})")
        ta, tb = ingest[ga]["appends_per_s"], ingest[gb]["appends_per_s"]
        if tb < INGEST_NOISE_FLOOR * ta:
            errors.append(
                f"online_updates: ingest throughput collapsed from group "
                f"{ga:.0f} ({ta:.0f}/s) to group {gb:.0f} ({tb:.0f}/s)")
    base_tp = ingest[sizes[0]]["appends_per_s"]
    for g in sizes[1:]:
        if ingest[g]["appends_per_s"] <= base_tp:
            errors.append(
                f"online_updates: ingest group {g:.0f} is not faster than "
                f"group {sizes[0]:.0f} commits "
                f"({ingest[g]['appends_per_s']:.0f}/s vs {base_tp:.0f}/s)")


# The visibility row's stage_sum_ms and sum_ms both come from the same
# exact integer-nanosecond accumulators (obs::IngestPipelineRecorders), so
# they must agree to double-rounding noise — any real gap means a stage
# boundary was dropped or double-counted.
PIPELINE_BALANCE_TOL_MS = 1e-6
PIPELINE_STAGES = ("admission", "group_wait", "apply", "fsync", "publish")


def _check_pipeline_rows(pipeline, visibility, stall, errors):
    """Write-path pipeline attribution (ISSUE 10): every stage digest saw
    every append exactly once, percentiles are rank-ordered, the stage sums
    telescope to the end-to-end write-visibility sum, every sampled group
    balanced, and the commit-trigger ledger accounts for every group."""
    if not visibility:
        errors.append("online_updates: no write-visibility measurement")
        return
    count = visibility.get("count")
    if not _is_number(count) or count < 1:
        errors.append(
            f"online_updates: visibility.count {count!r} (the pipeline must "
            "attribute at least one append)")
        return
    _check_percentile_order("online_updates", "visibility", visibility,
                            errors)
    for stage in PIPELINE_STAGES:
        row = pipeline.get(stage)
        if row is None:
            errors.append(
                f"online_updates: missing pipeline_{stage} stage row")
            continue
        if row.get("count") != count:
            errors.append(
                f"online_updates: pipeline_{stage}.count "
                f"{row.get('count')!r} != visibility.count {count:g} "
                "(every append must hit every stage exactly once)")
        if not _is_number(row.get("sum_ms")) or row.get("sum_ms") < 0:
            errors.append(
                f"online_updates: pipeline_{stage}.sum_ms "
                f"{row.get('sum_ms')!r} is not a non-negative number")
        _check_percentile_order("online_updates", f"pipeline_{stage}", row,
                                errors)
    stage_sum = visibility.get("stage_sum_ms")
    total = visibility.get("sum_ms")
    if not _is_number(stage_sum) or not _is_number(total):
        errors.append("online_updates: visibility row must carry numeric "
                      "sum_ms and stage_sum_ms")
    elif abs(stage_sum - total) > PIPELINE_BALANCE_TOL_MS:
        errors.append(
            f"online_updates: stage sums ({stage_sum} ms) do not telescope "
            f"to the write-visibility sum ({total} ms); a stage boundary "
            "was dropped or double-counted")
    if visibility.get("unbalanced") != 0:
        errors.append(
            f"online_updates: {visibility.get('unbalanced')!r} sampled "
            "groups failed the per-group stage-sum balance")
    sampled = visibility.get("sampled_groups")
    if not _is_number(sampled) or sampled < 1:
        errors.append(
            f"online_updates: visibility.sampled_groups {sampled!r} "
            "(deterministic 1-in-N group sampling must profile something)")
    if not stall:
        errors.append("online_updates: no stall-ledger measurement")
        return
    groups = stall.get("groups")
    triggers = [stall.get(k) for k in ("commits_full", "commits_deadline",
                                       "commits_drain")]
    if not _is_number(groups) or not all(_is_number(t) for t in triggers):
        errors.append("online_updates: stall row must carry numeric groups "
                      "and commits_full/deadline/drain")
    elif sum(triggers) != groups:
        errors.append(
            f"online_updates: commit triggers full/deadline/drain "
            f"{triggers[0]:g}/{triggers[1]:g}/{triggers[2]:g} do not "
            f"account for all {groups:g} committed groups")
    high_water = stall.get("depth_high_water")
    depth_avg = stall.get("depth_avg")
    if not _is_number(high_water) or high_water < 1:
        errors.append(
            f"online_updates: stall.depth_high_water {high_water!r} (the "
            "lane cannot commit appends without ever holding one)")
    if not _is_number(depth_avg) or depth_avg < 0:
        errors.append(
            f"online_updates: stall.depth_avg {depth_avg!r} is not a "
            "non-negative number")
    elif _is_number(high_water) and depth_avg > high_water:
        errors.append(
            f"online_updates: stall.depth_avg {depth_avg:g} exceeds the "
            f"high-water depth {high_water:g} (the time-weighted mean of a "
            "series cannot beat its maximum)")


def _check_online_updates(doc, errors):
    """Semantic rules for the online_updates artifact: incremental
    handicaps stay within budget of freshly rebuilt and beat stale, the
    concurrent serving phase ingested without failing any query, the
    writer's publish pipeline reports ordered latency percentiles
    (ISSUE 5), the group-commit ingest lane amortizes its durability
    bill (ISSUE 9, _check_ingest_rows), and the write-path pipeline
    attribution telescopes (ISSUE 10, _check_pipeline_rows)."""
    totals = {}
    online = {}
    publish = {}
    ingest = {}
    pipeline = {}
    visibility = {}
    stall = {}
    for m in doc.get("measurements", []):
        if not isinstance(m, dict):
            continue
        values = m.get("values")
        if not isinstance(values, dict):
            continue
        label = m.get("label")
        if isinstance(label, str) and label.startswith("pipeline_"):
            pipeline.setdefault(label[len("pipeline_"):], {}).update(
                {k: v for k, v in values.items() if _is_number(v)})
        if label == "visibility":
            visibility.update(
                {k: v for k, v in values.items() if _is_number(v)})
        if label == "stall":
            stall.update(
                {k: v for k, v in values.items() if _is_number(v)})
        if label in ("stale", "incremental", "rebuilt"):
            index = values.get("index_fetches")
            tuples = values.get("tuple_fetches")
            if _is_number(index) and _is_number(tuples):
                totals[label] = index + tuples
        if label == "online":
            online.update(
                {k: v for k, v in values.items() if _is_number(v)})
        if label == "publish":
            publish.update(
                {k: v for k, v in values.items() if _is_number(v)})
        if label == "ingest":
            group = (m.get("params") or {}).get("group")
            if _is_number(group) and group >= 1:
                ingest[group] = {k: v for k, v in values.items()
                                 if _is_number(v)}
    _check_ingest_rows(ingest, errors)
    _check_pipeline_rows(pipeline, visibility, stall, errors)
    if not publish:
        errors.append("online_updates: no publish-pipeline measurements")
    else:
        count = publish.get("count")
        if not _is_number(count) or count < 1:
            errors.append(
                f"online_updates: publish.count {count!r} (the writer must "
                "publish at least once)")
        else:
            _check_percentile_order("online_updates", "publish", publish,
                                    errors)
        epochs = publish.get("epochs")
        if _is_number(count) and _is_number(epochs) and epochs < count:
            errors.append(
                f"online_updates: pager saw {epochs:.0f} publish epochs but "
                f"the writer timed {count:.0f} publishes")
    missing = [v for v in ("stale", "incremental", "rebuilt")
               if v not in totals]
    if missing:
        errors.append(
            f"online_updates: missing page-access totals for {missing}")
    else:
        if totals["incremental"] > ONLINE_T2_BUDGET * totals["rebuilt"]:
            errors.append(
                f"online_updates: incremental T2 cost {totals['incremental']:.1f} "
                f"pages exceeds {ONLINE_T2_BUDGET}x the freshly rebuilt cost "
                f"{totals['rebuilt']:.1f}")
        if totals["incremental"] >= totals["stale"]:
            errors.append(
                f"online_updates: incremental T2 cost {totals['incremental']:.1f} "
                f"pages is not below the stale cost {totals['stale']:.1f}; "
                "maintenance isn't paying for itself")
    if "failed" not in online or "inserted" not in online:
        errors.append("online_updates: no concurrent-serving (online) "
                      "failed/inserted measurements")
        return
    if online["failed"] != 0:
        errors.append(
            f"online_updates: {online['failed']:.0f} queries failed under "
            "the concurrent writer")
    if online["inserted"] <= 0:
        errors.append("online_updates: concurrent writer inserted nothing")


_SEMANTIC_RULES = {
    "micro_substrates": _check_micro_substrates,
    "throughput_scaling": _check_throughput_scaling,
    "online_updates": _check_online_updates,
}


def validate(doc):
    """Returns a list of violation strings (empty = valid)."""
    errors = []
    if not isinstance(doc, dict):
        return ["document: expected a JSON object"]
    if doc.get("schema") != SCHEMA:
        errors.append(f"schema: expected {SCHEMA!r}, got {doc.get('schema')!r}")
    if not isinstance(doc.get("bench"), str) or not doc.get("bench"):
        errors.append("bench: expected a non-empty string")
    measurements = doc.get("measurements")
    if not isinstance(measurements, list):
        errors.append("measurements: expected an array")
    else:
        if not measurements:
            errors.append("measurements: empty (artifact carries no data)")
        for i, m in enumerate(measurements):
            _check_measurement(i, m, errors)
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        errors.append("metrics: expected an object")
    else:
        _check_number_map(metrics.get("counters"), "metrics.counters", errors)
        _check_number_map(metrics.get("gauges"), "metrics.gauges", errors)
        hists = metrics.get("histograms")
        if not isinstance(hists, dict):
            errors.append("metrics.histograms: expected an object")
        else:
            for name, h in hists.items():
                _check_histogram(name, h, errors)
    rule = _SEMANTIC_RULES.get(doc.get("bench"))
    if rule is not None:
        rule(doc, errors)
    return errors


def validate_file(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [f"{path}: {e}"]
    return [f"{path}: {err}" for err in validate(doc)]


_GOOD = {
    "schema": SCHEMA,
    "bench": "fig8_small_objects",
    "measurements": [
        {"label": "t2/exist", "params": {"n": 2000, "k": 3},
         "values": {"index_fetches": 12.5, "results": 200,
                    "candidates": 250, "dedup_dropped": 20,
                    "early_accepts": 0, "refine_accepts": 200,
                    "refine_rejects": 30, "precision": 0.8}},
    ],
    "metrics": {
        "counters": {"dual.refine.lp_calls": 4181},
        "gauges": {"relation.resident_frames": 64},
        "histograms": {
            "lat": {"bounds": [1.0, 10.0], "counts": [3, 2, 1],
                    "count": 6, "sum": 27.5},
        },
    },
}


_GOOD_MICRO = {
    "schema": SCHEMA,
    "bench": "micro_substrates",
    "measurements": [
        {"label": "pager_fetch_warm", "params": {"checksums": 1},
         "values": {"ns_per_fetch": 30.9}},
        {"label": "pager_fetch_warm", "params": {},
         "values": {"checksum_overhead_ratio": 0.99}},
        {"label": "refine", "params": {"batched": 0},
         "values": {"ns_per_candidate": 3700.0, "pages_per_candidate": 0.15,
                    "candidates": 7200, "accepts": 996}},
        {"label": "refine", "params": {"batched": 1},
         "values": {"ns_per_candidate": 840.0, "pages_per_candidate": 0.12,
                    "candidates": 7200, "accepts": 996}},
    ],
    "metrics": {"counters": {}, "gauges": {}, "histograms": {}},
}


_GOOD_THROUGHPUT = {
    "schema": SCHEMA,
    "bench": "throughput_scaling",
    "measurements": [
        {"label": "accounting", "params": {},
         "values": {"accounting_match": 1, "queries_checked": 256}},
        {"label": "cold", "params": {"threads": 1},
         "values": {"qps": 350.0, "wall_ms": 731.4, "queries": 256,
                    "failed": 0}},
        {"label": "warm", "params": {"threads": 1},
         "values": {"qps": 360.0, "wall_ms": 711.1, "queries": 256,
                    "failed": 0}},
        {"label": "warm", "params": {"threads": 2},
         "values": {"qps": 355.0, "wall_ms": 721.1, "queries": 256,
                    "failed": 0}},
        {"label": "latency", "params": {"threads": 1},
         "values": {"count": 256, "mean_ms": 2.3, "p50_ms": 1.9,
                    "p95_ms": 4.1, "p99_ms": 5.8, "max_ms": 6.2}},
        {"label": "queue_wait", "params": {"threads": 1},
         "values": {"count": 256, "p50_ms": 0.01, "p95_ms": 0.04,
                    "p99_ms": 0.09}},
        {"label": "sampling", "params": {"threads": 1},
         "values": {"sampled": 61, "balanced": 61}},
        {"label": "latency", "params": {"threads": 2},
         "values": {"count": 256, "mean_ms": 2.5, "p50_ms": 2.0,
                    "p95_ms": 4.6, "p99_ms": 6.3, "max_ms": 7.0}},
        {"label": "queue_wait", "params": {"threads": 2},
         "values": {"count": 256, "p50_ms": 0.02, "p95_ms": 0.07,
                    "p99_ms": 0.13}},
        {"label": "sampling", "params": {"threads": 2},
         "values": {"sampled": 61, "balanced": 61}},
        {"label": "overload", "params": {},
         "values": {"submitted": 256, "completed": 128, "shed": 128}},
        {"label": "refine", "params": {"batched": 0},
         "values": {"ns_per_candidate": 3700.0, "pages_per_candidate": 0.15,
                    "candidates": 7200, "accepts": 996}},
        {"label": "refine", "params": {"batched": 1},
         "values": {"ns_per_candidate": 840.0, "pages_per_candidate": 0.12,
                    "candidates": 7200, "accepts": 996}},
    ],
    "metrics": {"counters": {}, "gauges": {}, "histograms": {}},
}


_GOOD_ONLINE = {
    "schema": SCHEMA,
    "bench": "online_updates",
    "measurements": [
        {"label": "stale", "params": {"n0": 3000, "inserted": 1000},
         "values": {"index_fetches": 35.9, "tuple_fetches": 541.8}},
        {"label": "incremental", "params": {"n0": 3000, "inserted": 1000},
         "values": {"index_fetches": 38.6, "tuple_fetches": 536.5}},
        {"label": "rebuilt", "params": {"n0": 3000, "inserted": 1000},
         "values": {"index_fetches": 34.8, "tuple_fetches": 533.1}},
        {"label": "online", "params": {"threads": 8},
         "values": {"qps": 144.0}},
        {"label": "online", "params": {"threads": 8},
         "values": {"inserted": 500}},
        {"label": "online", "params": {"threads": 8},
         "values": {"failed": 0}},
        {"label": "publish", "params": {"threads": 8},
         "values": {"count": 10, "p50_ms": 0.8, "p95_ms": 1.5,
                    "p99_ms": 2.1, "max_ms": 2.2, "epochs": 11,
                    "pages": 430, "sessions_drained": 64,
                    "drain_ms": 3.7}},
        {"label": "ingest", "params": {"group": 1},
         "values": {"appends": 2048, "groups": 2048, "group_fsyncs": 2048,
                    "appends_per_s": 210000.0, "wall_ms": 9.7,
                    "publish_p50_ms": 0.004, "publish_p95_ms": 0.008,
                    "publish_p99_ms": 0.011, "publish_max_ms": 0.02}},
        {"label": "ingest", "params": {"group": 64},
         "values": {"appends": 2048, "groups": 32, "group_fsyncs": 32,
                    "appends_per_s": 2300000.0, "wall_ms": 0.9,
                    "publish_p50_ms": 0.02, "publish_p95_ms": 0.04,
                    "publish_p99_ms": 0.05, "publish_max_ms": 0.07}},
        {"label": "pipeline_admission", "params": {"group": 32},
         "values": {"count": 256, "sum_ms": 8000.0, "p50_ms": 33.0,
                    "p95_ms": 84.0, "p99_ms": 84.0, "max_ms": 84.3}},
        {"label": "pipeline_group_wait", "params": {"group": 32},
         "values": {"count": 256, "sum_ms": 0.1, "p50_ms": 0.0006,
                    "p95_ms": 0.0006, "p99_ms": 0.0006, "max_ms": 0.0007}},
        {"label": "pipeline_apply", "params": {"group": 32},
         "values": {"count": 256, "sum_ms": 3000.0, "p50_ms": 11.9,
                    "p95_ms": 21.8, "p99_ms": 21.8, "max_ms": 21.9}},
        {"label": "pipeline_fsync", "params": {"group": 32},
         "values": {"count": 256, "sum_ms": 50.0, "p50_ms": 0.02,
                    "p95_ms": 1.9, "p99_ms": 1.9, "max_ms": 2.0}},
        {"label": "pipeline_publish", "params": {"group": 32},
         "values": {"count": 256, "sum_ms": 30.0, "p50_ms": 0.08,
                    "p95_ms": 1.8, "p99_ms": 1.8, "max_ms": 1.8}},
        {"label": "visibility", "params": {"group": 32},
         "values": {"count": 256, "sum_ms": 11080.1,
                    "stage_sum_ms": 11080.1, "p50_ms": 39.9, "p95_ms": 100.3,
                    "p99_ms": 100.3, "max_ms": 100.4, "unbalanced": 0,
                    "sampled_groups": 2}},
        {"label": "stall", "params": {"group": 32},
         "values": {"groups": 8, "commits_full": 8, "commits_deadline": 0,
                    "commits_drain": 0, "depth_high_water": 256,
                    "depth_avg": 105.8, "sessions_drained": 2,
                    "drain_ms": 1.7}},
    ],
    "metrics": {"counters": {}, "gauges": {"dual.handicap.staleness": 235},
                "histograms": {}},
}


def self_test():
    import copy

    failures = []
    counts = {"good": 0, "bad": 0}

    def expect(doc, should_pass, what):
        counts["good" if should_pass else "bad"] += 1
        errs = validate(doc)
        if bool(not errs) != should_pass:
            failures.append(f"{what}: {'unexpected errors ' + repr(errs) if errs else 'expected errors, got none'}")

    expect(_GOOD, True, "good artifact")

    def broken(mutate, what):
        doc = copy.deepcopy(_GOOD)
        mutate(doc)
        expect(doc, False, what)

    broken(lambda d: d.update(schema="cdb-bench/v0"), "wrong schema version")
    broken(lambda d: d.pop("bench"), "missing bench name")
    broken(lambda d: d.update(measurements=[]), "empty measurements")
    broken(lambda d: d["measurements"][0].pop("label"), "measurement sans label")
    broken(lambda d: d["measurements"][0]["params"].update(n="2000"),
           "string where a number belongs")
    broken(lambda d: d["measurements"][0].update(values={}), "empty values")
    broken(lambda d: d["metrics"]["histograms"]["lat"].update(counts=[1, 2]),
           "counts/bounds arity mismatch")
    broken(lambda d: d["metrics"]["histograms"]["lat"].update(count=99),
           "count disagrees with bucket sum")
    broken(lambda d: d["metrics"]["histograms"]["lat"].update(
        bounds=[10.0, 1.0]), "unsorted bounds")
    broken(lambda d: d.pop("metrics"), "missing metrics")
    broken(lambda d: d["measurements"][0]["values"].update(precision=0),
           "precision of zero (an empty candidate set is vacuously 1)")
    broken(lambda d: d["measurements"][0]["values"].update(precision=1.2),
           "precision above 1")
    broken(lambda d: d["measurements"][0]["values"].update(candidates=150),
           "candidates below results")
    broken(lambda d: d["measurements"][0]["values"].update(refine_rejects=40),
           "filter phase counts do not sum to candidates")

    expect(_GOOD_MICRO, True, "good micro_substrates artifact")

    def broken_micro(mutate, what):
        doc = copy.deepcopy(_GOOD_MICRO)
        mutate(doc)
        expect(doc, False, what)

    broken_micro(
        lambda d: d["measurements"][1]["values"].update(
            checksum_overhead_ratio=1.5),
        "warm checksum overhead over budget")
    broken_micro(lambda d: d["measurements"].pop(1),
                 "micro_substrates sans overhead measurement")
    broken_micro(lambda d: d["measurements"].pop(3),
                 "micro_substrates sans batched refine row")
    broken_micro(
        lambda d: [d["measurements"].pop(3), d["measurements"].pop(2)],
        "micro_substrates sans any refine rows")
    broken_micro(
        lambda d: d["measurements"][3]["values"].update(
            pages_per_candidate=0.2),
        "batched refine reads more pages per candidate than scalar")
    broken_micro(
        lambda d: d["measurements"][3]["values"].update(ns_per_candidate=0),
        "refine row with zero ns_per_candidate")
    broken_micro(
        lambda d: d["measurements"][3]["values"].update(accepts=990),
        "batched refine accepts diverge from scalar")
    broken_micro(
        lambda d: d["measurements"][3]["params"].pop("batched"),
        "refine row without a batched param")

    expect(_GOOD_THROUGHPUT, True, "good throughput_scaling artifact")

    def broken_throughput(mutate, what):
        doc = copy.deepcopy(_GOOD_THROUGHPUT)
        mutate(doc)
        expect(doc, False, what)

    broken_throughput(
        lambda d: d["measurements"][0]["values"].update(accounting_match=0),
        "executor accounting diverged from serial")
    broken_throughput(lambda d: d["measurements"].pop(0),
                      "throughput_scaling sans accounting measurement")
    broken_throughput(
        lambda d: d["measurements"][3]["values"].update(qps=100.0),
        "2-thread warm qps below the noise floor")
    broken_throughput(lambda d: d["measurements"].pop(3),
                      "throughput_scaling sans 2-thread warm row")
    broken_throughput(
        lambda d: d["measurements"][1]["values"].update(failed=3),
        "cold run with failed queries")
    broken_throughput(
        lambda d: d["measurements"][4]["values"].update(count=255),
        "latency count disagrees with batch size")
    broken_throughput(
        lambda d: d["measurements"][4]["values"].update(p95_ms=6.0),
        "service-latency percentiles out of order")
    broken_throughput(
        lambda d: d["measurements"][5]["values"].pop("p99_ms"),
        "queue-wait row missing a required percentile")
    broken_throughput(lambda d: d["measurements"].pop(6),
                      "throughput_scaling sans sampling row")
    broken_throughput(
        lambda d: d["measurements"][6]["values"].update(balanced=60),
        "sampled trace with unbalanced spans")
    broken_throughput(
        lambda d: d["measurements"][6]["values"].update(sampled=0,
                                                        balanced=0),
        "sampling enabled but nothing traced")
    broken_throughput(lambda d: d["measurements"].pop(10),
                      "throughput_scaling sans overload ledger row")
    broken_throughput(
        lambda d: d["measurements"][10]["values"].update(shed=100),
        "overload ledger does not balance (shed + completed != submitted)")
    broken_throughput(
        lambda d: d["measurements"][10]["values"].pop("completed"),
        "overload row missing a ledger column")
    broken_throughput(lambda d: d["measurements"].pop(12),
                      "throughput_scaling sans batched refine row")
    broken_throughput(
        lambda d: d["measurements"][12]["values"].update(
            pages_per_candidate=0.5),
        "throughput_scaling batched refine pages above scalar")

    expect(_GOOD_ONLINE, True, "good online_updates artifact")

    def broken_online(mutate, what):
        doc = copy.deepcopy(_GOOD_ONLINE)
        mutate(doc)
        expect(doc, False, what)

    broken_online(
        lambda d: d["measurements"][1]["values"].update(tuple_fetches=660.0),
        "incremental T2 cost over the rebuilt budget")
    broken_online(
        lambda d: d["measurements"][0]["values"].update(tuple_fetches=530.0),
        "incremental T2 cost not below stale")
    broken_online(lambda d: d["measurements"].pop(2),
                  "online_updates sans rebuilt row")
    broken_online(
        lambda d: d["measurements"][5]["values"].update(failed=2),
        "queries failed under the concurrent writer")
    broken_online(lambda d: d["measurements"].pop(5),
                  "online_updates sans concurrent failed count")
    broken_online(lambda d: d["measurements"].pop(6),
                  "online_updates sans publish-pipeline row")
    broken_online(
        lambda d: d["measurements"][6]["values"].update(p99_ms=1.0),
        "publish percentiles out of order")
    broken_online(
        lambda d: d["measurements"][6]["values"].update(count=0),
        "publish pipeline never published")
    broken_online(
        lambda d: d["measurements"][6]["values"].update(epochs=5),
        "pager epochs below timed publish count")
    broken_online(
        lambda d: [d["measurements"].pop(8), d["measurements"].pop(7)],
        "online_updates sans group-commit ingest rows")
    broken_online(lambda d: d["measurements"].pop(8),
                  "ingest with a single group size")
    broken_online(
        lambda d: d["measurements"][8]["values"].update(group_fsyncs=33),
        "more than one journal fsync per committed group")
    broken_online(
        lambda d: d["measurements"][8]["values"].update(groups=31,
                                                        group_fsyncs=31),
        "ingest group count disagrees with ceil(appends / group)")
    broken_online(
        lambda d: d["measurements"][8]["values"].update(
            appends_per_s=150000.0),
        "grouped commits slower than single-append commits")
    broken_online(
        lambda d: d["measurements"][8]["values"].update(publish_p99_ms=0.01),
        "ingest publish percentiles out of order")
    broken_online(
        lambda d: d["measurements"][8]["values"].pop("group_fsyncs"),
        "ingest row missing the fsync column")
    broken_online(lambda d: d["measurements"].pop(14),
                  "online_updates sans write-visibility row")
    broken_online(lambda d: d["measurements"].pop(11),
                  "online_updates sans a pipeline stage row")
    broken_online(
        lambda d: d["measurements"][11]["values"].update(count=255),
        "pipeline stage count disagrees with visibility count")
    broken_online(
        lambda d: d["measurements"][11]["values"].update(p95_ms=5.0),
        "pipeline stage percentiles out of order")
    broken_online(
        lambda d: d["measurements"][11]["values"].update(sum_ms=-1.0),
        "pipeline stage with a negative sum")
    broken_online(
        lambda d: d["measurements"][14]["values"].update(
            stage_sum_ms=11000.0),
        "stage sums do not telescope to the visibility sum")
    broken_online(
        lambda d: d["measurements"][14]["values"].update(unbalanced=1),
        "a sampled group failed the stage-sum balance")
    broken_online(
        lambda d: d["measurements"][14]["values"].update(sampled_groups=0),
        "group sampling enabled but nothing profiled")
    broken_online(lambda d: d["measurements"].pop(15),
                  "online_updates sans stall-ledger row")
    broken_online(
        lambda d: d["measurements"][15]["values"].update(commits_full=7),
        "commit triggers do not account for every group")
    broken_online(
        lambda d: d["measurements"][15]["values"].update(depth_high_water=0),
        "lane committed appends with a zero high-water depth")
    broken_online(
        lambda d: d["measurements"][15]["values"].update(depth_avg=300.0),
        "time-weighted mean depth above the high-water mark")

    if failures:
        for f in failures:
            print(f"SELF-TEST FAIL: {f}", file=sys.stderr)
        return 1
    print(f"self-test OK ({counts['good']} good + "
          f"{counts['bad']} broken artifacts)")
    return 0


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    if argv[1] == "--self-test":
        return self_test()
    bad = 0
    for path in argv[1:]:
        errors = validate_file(path)
        if errors:
            bad += 1
            for err in errors:
                print(err, file=sys.stderr)
        else:
            print(f"{path}: OK")
    return 1 if bad else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
