file(REMOVE_RECURSE
  "CMakeFiles/land_registry.dir/land_registry.cc.o"
  "CMakeFiles/land_registry.dir/land_registry.cc.o.d"
  "land_registry"
  "land_registry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/land_registry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
