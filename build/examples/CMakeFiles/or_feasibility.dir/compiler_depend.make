# Empty compiler generated dependencies file for or_feasibility.
# This may be replaced when dependencies are built.
