file(REMOVE_RECURSE
  "CMakeFiles/or_feasibility.dir/or_feasibility.cc.o"
  "CMakeFiles/or_feasibility.dir/or_feasibility.cc.o.d"
  "or_feasibility"
  "or_feasibility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/or_feasibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
