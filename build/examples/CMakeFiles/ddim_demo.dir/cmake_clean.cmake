file(REMOVE_RECURSE
  "CMakeFiles/ddim_demo.dir/ddim_demo.cc.o"
  "CMakeFiles/ddim_demo.dir/ddim_demo.cc.o.d"
  "ddim_demo"
  "ddim_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddim_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
