# Empty compiler generated dependencies file for ddim_demo.
# This may be replaced when dependencies are built.
