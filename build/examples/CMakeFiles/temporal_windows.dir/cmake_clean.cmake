file(REMOVE_RECURSE
  "CMakeFiles/temporal_windows.dir/temporal_windows.cc.o"
  "CMakeFiles/temporal_windows.dir/temporal_windows.cc.o.d"
  "temporal_windows"
  "temporal_windows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/temporal_windows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
