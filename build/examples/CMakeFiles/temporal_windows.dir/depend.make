# Empty dependencies file for temporal_windows.
# This may be replaced when dependencies are built.
