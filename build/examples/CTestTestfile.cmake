# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_land_registry "/root/repo/build/examples/land_registry")
set_tests_properties(example_land_registry PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_or_feasibility "/root/repo/build/examples/or_feasibility")
set_tests_properties(example_or_feasibility PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_ddim_demo "/root/repo/build/examples/ddim_demo")
set_tests_properties(example_ddim_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_constraint_shell "/root/repo/build/examples/constraint_shell")
set_tests_properties(example_constraint_shell PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_temporal_windows "/root/repo/build/examples/temporal_windows")
set_tests_properties(example_temporal_windows PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
