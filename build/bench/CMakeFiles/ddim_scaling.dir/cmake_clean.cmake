file(REMOVE_RECURSE
  "CMakeFiles/ddim_scaling.dir/ddim_scaling.cc.o"
  "CMakeFiles/ddim_scaling.dir/ddim_scaling.cc.o.d"
  "ddim_scaling"
  "ddim_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddim_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
