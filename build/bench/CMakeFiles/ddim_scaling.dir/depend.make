# Empty dependencies file for ddim_scaling.
# This may be replaced when dependencies are built.
