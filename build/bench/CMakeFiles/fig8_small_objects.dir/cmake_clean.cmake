file(REMOVE_RECURSE
  "CMakeFiles/fig8_small_objects.dir/fig8_small_objects.cc.o"
  "CMakeFiles/fig8_small_objects.dir/fig8_small_objects.cc.o.d"
  "fig8_small_objects"
  "fig8_small_objects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_small_objects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
