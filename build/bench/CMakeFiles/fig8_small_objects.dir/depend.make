# Empty dependencies file for fig8_small_objects.
# This may be replaced when dependencies are built.
