file(REMOVE_RECURSE
  "CMakeFiles/fig9_medium_objects.dir/fig9_medium_objects.cc.o"
  "CMakeFiles/fig9_medium_objects.dir/fig9_medium_objects.cc.o.d"
  "fig9_medium_objects"
  "fig9_medium_objects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_medium_objects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
