# Empty dependencies file for fig9_medium_objects.
# This may be replaced when dependencies are built.
