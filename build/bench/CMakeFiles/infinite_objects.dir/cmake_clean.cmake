file(REMOVE_RECURSE
  "CMakeFiles/infinite_objects.dir/infinite_objects.cc.o"
  "CMakeFiles/infinite_objects.dir/infinite_objects.cc.o.d"
  "infinite_objects"
  "infinite_objects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/infinite_objects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
