# Empty dependencies file for infinite_objects.
# This may be replaced when dependencies are built.
