file(REMOVE_RECURSE
  "CMakeFiles/rtree_family.dir/rtree_family.cc.o"
  "CMakeFiles/rtree_family.dir/rtree_family.cc.o.d"
  "rtree_family"
  "rtree_family.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtree_family.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
