# Empty dependencies file for rtree_family.
# This may be replaced when dependencies are built.
