# Empty dependencies file for handicap_staleness.
# This may be replaced when dependencies are built.
