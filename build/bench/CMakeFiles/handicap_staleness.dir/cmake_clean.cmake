file(REMOVE_RECURSE
  "CMakeFiles/handicap_staleness.dir/handicap_staleness.cc.o"
  "CMakeFiles/handicap_staleness.dir/handicap_staleness.cc.o.d"
  "handicap_staleness"
  "handicap_staleness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/handicap_staleness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
