file(REMOVE_RECURSE
  "CMakeFiles/update_and_restricted.dir/update_and_restricted.cc.o"
  "CMakeFiles/update_and_restricted.dir/update_and_restricted.cc.o.d"
  "update_and_restricted"
  "update_and_restricted.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/update_and_restricted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
