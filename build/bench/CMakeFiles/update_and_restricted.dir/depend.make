# Empty dependencies file for update_and_restricted.
# This may be replaced when dependencies are built.
