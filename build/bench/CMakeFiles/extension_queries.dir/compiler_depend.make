# Empty compiler generated dependencies file for extension_queries.
# This may be replaced when dependencies are built.
