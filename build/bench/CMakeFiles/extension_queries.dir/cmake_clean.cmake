file(REMOVE_RECURSE
  "CMakeFiles/extension_queries.dir/extension_queries.cc.o"
  "CMakeFiles/extension_queries.dir/extension_queries.cc.o.d"
  "extension_queries"
  "extension_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
