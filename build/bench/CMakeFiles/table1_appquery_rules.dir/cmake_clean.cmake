file(REMOVE_RECURSE
  "CMakeFiles/table1_appquery_rules.dir/table1_appquery_rules.cc.o"
  "CMakeFiles/table1_appquery_rules.dir/table1_appquery_rules.cc.o.d"
  "table1_appquery_rules"
  "table1_appquery_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_appquery_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
