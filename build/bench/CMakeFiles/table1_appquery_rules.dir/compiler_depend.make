# Empty compiler generated dependencies file for table1_appquery_rules.
# This may be replaced when dependencies are built.
