file(REMOVE_RECURSE
  "libcdb_bench_harness.a"
)
