file(REMOVE_RECURSE
  "CMakeFiles/cdb_bench_harness.dir/harness.cc.o"
  "CMakeFiles/cdb_bench_harness.dir/harness.cc.o.d"
  "libcdb_bench_harness.a"
  "libcdb_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdb_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
