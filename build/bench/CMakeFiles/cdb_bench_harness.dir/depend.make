# Empty dependencies file for cdb_bench_harness.
# This may be replaced when dependencies are built.
