# Empty dependencies file for t1_vs_t2.
# This may be replaced when dependencies are built.
