file(REMOVE_RECURSE
  "CMakeFiles/t1_vs_t2.dir/t1_vs_t2.cc.o"
  "CMakeFiles/t1_vs_t2.dir/t1_vs_t2.cc.o.d"
  "t1_vs_t2"
  "t1_vs_t2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/t1_vs_t2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
