file(REMOVE_RECURSE
  "CMakeFiles/build_cost.dir/build_cost.cc.o"
  "CMakeFiles/build_cost.dir/build_cost.cc.o.d"
  "build_cost"
  "build_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/build_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
