file(REMOVE_RECURSE
  "CMakeFiles/fig10_space.dir/fig10_space.cc.o"
  "CMakeFiles/fig10_space.dir/fig10_space.cc.o.d"
  "fig10_space"
  "fig10_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
