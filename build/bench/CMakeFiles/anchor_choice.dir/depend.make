# Empty dependencies file for anchor_choice.
# This may be replaced when dependencies are built.
