file(REMOVE_RECURSE
  "CMakeFiles/anchor_choice.dir/anchor_choice.cc.o"
  "CMakeFiles/anchor_choice.dir/anchor_choice.cc.o.d"
  "anchor_choice"
  "anchor_choice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anchor_choice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
