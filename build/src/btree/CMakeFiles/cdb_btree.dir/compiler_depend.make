# Empty compiler generated dependencies file for cdb_btree.
# This may be replaced when dependencies are built.
