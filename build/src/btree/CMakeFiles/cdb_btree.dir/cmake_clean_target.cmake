file(REMOVE_RECURSE
  "libcdb_btree.a"
)
