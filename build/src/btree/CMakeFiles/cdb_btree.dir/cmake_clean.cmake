file(REMOVE_RECURSE
  "CMakeFiles/cdb_btree.dir/bplus_tree.cc.o"
  "CMakeFiles/cdb_btree.dir/bplus_tree.cc.o.d"
  "libcdb_btree.a"
  "libcdb_btree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdb_btree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
