# Empty compiler generated dependencies file for cdb_workload.
# This may be replaced when dependencies are built.
