file(REMOVE_RECURSE
  "CMakeFiles/cdb_workload.dir/generator.cc.o"
  "CMakeFiles/cdb_workload.dir/generator.cc.o.d"
  "CMakeFiles/cdb_workload.dir/query_gen.cc.o"
  "CMakeFiles/cdb_workload.dir/query_gen.cc.o.d"
  "libcdb_workload.a"
  "libcdb_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdb_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
