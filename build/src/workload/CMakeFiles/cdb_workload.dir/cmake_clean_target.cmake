file(REMOVE_RECURSE
  "libcdb_workload.a"
)
