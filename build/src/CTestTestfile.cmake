# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("storage")
subdirs("obs")
subdirs("geometry")
subdirs("constraint")
subdirs("btree")
subdirs("dualindex")
subdirs("workload")
subdirs("rtree")
subdirs("db")
