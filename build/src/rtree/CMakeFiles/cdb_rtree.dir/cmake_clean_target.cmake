file(REMOVE_RECURSE
  "libcdb_rtree.a"
)
