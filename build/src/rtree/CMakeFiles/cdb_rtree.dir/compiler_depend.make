# Empty compiler generated dependencies file for cdb_rtree.
# This may be replaced when dependencies are built.
