
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rtree/guttman_rtree.cc" "src/rtree/CMakeFiles/cdb_rtree.dir/guttman_rtree.cc.o" "gcc" "src/rtree/CMakeFiles/cdb_rtree.dir/guttman_rtree.cc.o.d"
  "/root/repo/src/rtree/quadtree.cc" "src/rtree/CMakeFiles/cdb_rtree.dir/quadtree.cc.o" "gcc" "src/rtree/CMakeFiles/cdb_rtree.dir/quadtree.cc.o.d"
  "/root/repo/src/rtree/rplus_tree.cc" "src/rtree/CMakeFiles/cdb_rtree.dir/rplus_tree.cc.o" "gcc" "src/rtree/CMakeFiles/cdb_rtree.dir/rplus_tree.cc.o.d"
  "/root/repo/src/rtree/rtree_query.cc" "src/rtree/CMakeFiles/cdb_rtree.dir/rtree_query.cc.o" "gcc" "src/rtree/CMakeFiles/cdb_rtree.dir/rtree_query.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cdb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/cdb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/cdb_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/constraint/CMakeFiles/cdb_constraint.dir/DependInfo.cmake"
  "/root/repo/build/src/dualindex/CMakeFiles/cdb_dualindex.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/cdb_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/btree/CMakeFiles/cdb_btree.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
