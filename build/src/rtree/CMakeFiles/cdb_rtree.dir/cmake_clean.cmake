file(REMOVE_RECURSE
  "CMakeFiles/cdb_rtree.dir/guttman_rtree.cc.o"
  "CMakeFiles/cdb_rtree.dir/guttman_rtree.cc.o.d"
  "CMakeFiles/cdb_rtree.dir/quadtree.cc.o"
  "CMakeFiles/cdb_rtree.dir/quadtree.cc.o.d"
  "CMakeFiles/cdb_rtree.dir/rplus_tree.cc.o"
  "CMakeFiles/cdb_rtree.dir/rplus_tree.cc.o.d"
  "CMakeFiles/cdb_rtree.dir/rtree_query.cc.o"
  "CMakeFiles/cdb_rtree.dir/rtree_query.cc.o.d"
  "libcdb_rtree.a"
  "libcdb_rtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdb_rtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
