file(REMOVE_RECURSE
  "CMakeFiles/cdb_common.dir/status.cc.o"
  "CMakeFiles/cdb_common.dir/status.cc.o.d"
  "libcdb_common.a"
  "libcdb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
