file(REMOVE_RECURSE
  "libcdb_common.a"
)
