# Empty dependencies file for cdb_common.
# This may be replaced when dependencies are built.
