# Empty dependencies file for cdb_geometry.
# This may be replaced when dependencies are built.
