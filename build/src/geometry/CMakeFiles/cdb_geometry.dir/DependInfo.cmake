
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geometry/dual.cc" "src/geometry/CMakeFiles/cdb_geometry.dir/dual.cc.o" "gcc" "src/geometry/CMakeFiles/cdb_geometry.dir/dual.cc.o.d"
  "/root/repo/src/geometry/dual_surface.cc" "src/geometry/CMakeFiles/cdb_geometry.dir/dual_surface.cc.o" "gcc" "src/geometry/CMakeFiles/cdb_geometry.dir/dual_surface.cc.o.d"
  "/root/repo/src/geometry/lp2d.cc" "src/geometry/CMakeFiles/cdb_geometry.dir/lp2d.cc.o" "gcc" "src/geometry/CMakeFiles/cdb_geometry.dir/lp2d.cc.o.d"
  "/root/repo/src/geometry/lpd.cc" "src/geometry/CMakeFiles/cdb_geometry.dir/lpd.cc.o" "gcc" "src/geometry/CMakeFiles/cdb_geometry.dir/lpd.cc.o.d"
  "/root/repo/src/geometry/polyhedron2d.cc" "src/geometry/CMakeFiles/cdb_geometry.dir/polyhedron2d.cc.o" "gcc" "src/geometry/CMakeFiles/cdb_geometry.dir/polyhedron2d.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
