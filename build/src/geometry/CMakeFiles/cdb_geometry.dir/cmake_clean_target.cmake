file(REMOVE_RECURSE
  "libcdb_geometry.a"
)
