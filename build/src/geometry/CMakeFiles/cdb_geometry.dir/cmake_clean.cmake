file(REMOVE_RECURSE
  "CMakeFiles/cdb_geometry.dir/dual.cc.o"
  "CMakeFiles/cdb_geometry.dir/dual.cc.o.d"
  "CMakeFiles/cdb_geometry.dir/dual_surface.cc.o"
  "CMakeFiles/cdb_geometry.dir/dual_surface.cc.o.d"
  "CMakeFiles/cdb_geometry.dir/lp2d.cc.o"
  "CMakeFiles/cdb_geometry.dir/lp2d.cc.o.d"
  "CMakeFiles/cdb_geometry.dir/lpd.cc.o"
  "CMakeFiles/cdb_geometry.dir/lpd.cc.o.d"
  "CMakeFiles/cdb_geometry.dir/polyhedron2d.cc.o"
  "CMakeFiles/cdb_geometry.dir/polyhedron2d.cc.o.d"
  "libcdb_geometry.a"
  "libcdb_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdb_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
