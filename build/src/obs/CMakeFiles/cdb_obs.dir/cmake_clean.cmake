file(REMOVE_RECURSE
  "CMakeFiles/cdb_obs.dir/json.cc.o"
  "CMakeFiles/cdb_obs.dir/json.cc.o.d"
  "CMakeFiles/cdb_obs.dir/metrics.cc.o"
  "CMakeFiles/cdb_obs.dir/metrics.cc.o.d"
  "CMakeFiles/cdb_obs.dir/trace.cc.o"
  "CMakeFiles/cdb_obs.dir/trace.cc.o.d"
  "libcdb_obs.a"
  "libcdb_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdb_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
