# Empty dependencies file for cdb_obs.
# This may be replaced when dependencies are built.
