file(REMOVE_RECURSE
  "libcdb_obs.a"
)
