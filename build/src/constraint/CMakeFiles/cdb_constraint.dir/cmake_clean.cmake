file(REMOVE_RECURSE
  "CMakeFiles/cdb_constraint.dir/generalized_tuple.cc.o"
  "CMakeFiles/cdb_constraint.dir/generalized_tuple.cc.o.d"
  "CMakeFiles/cdb_constraint.dir/naive_eval.cc.o"
  "CMakeFiles/cdb_constraint.dir/naive_eval.cc.o.d"
  "CMakeFiles/cdb_constraint.dir/parser.cc.o"
  "CMakeFiles/cdb_constraint.dir/parser.cc.o.d"
  "CMakeFiles/cdb_constraint.dir/relation.cc.o"
  "CMakeFiles/cdb_constraint.dir/relation.cc.o.d"
  "CMakeFiles/cdb_constraint.dir/relation_d.cc.o"
  "CMakeFiles/cdb_constraint.dir/relation_d.cc.o.d"
  "libcdb_constraint.a"
  "libcdb_constraint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdb_constraint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
