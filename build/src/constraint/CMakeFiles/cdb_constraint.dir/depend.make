# Empty dependencies file for cdb_constraint.
# This may be replaced when dependencies are built.
