file(REMOVE_RECURSE
  "libcdb_constraint.a"
)
