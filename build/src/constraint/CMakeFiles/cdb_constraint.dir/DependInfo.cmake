
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/constraint/generalized_tuple.cc" "src/constraint/CMakeFiles/cdb_constraint.dir/generalized_tuple.cc.o" "gcc" "src/constraint/CMakeFiles/cdb_constraint.dir/generalized_tuple.cc.o.d"
  "/root/repo/src/constraint/naive_eval.cc" "src/constraint/CMakeFiles/cdb_constraint.dir/naive_eval.cc.o" "gcc" "src/constraint/CMakeFiles/cdb_constraint.dir/naive_eval.cc.o.d"
  "/root/repo/src/constraint/parser.cc" "src/constraint/CMakeFiles/cdb_constraint.dir/parser.cc.o" "gcc" "src/constraint/CMakeFiles/cdb_constraint.dir/parser.cc.o.d"
  "/root/repo/src/constraint/relation.cc" "src/constraint/CMakeFiles/cdb_constraint.dir/relation.cc.o" "gcc" "src/constraint/CMakeFiles/cdb_constraint.dir/relation.cc.o.d"
  "/root/repo/src/constraint/relation_d.cc" "src/constraint/CMakeFiles/cdb_constraint.dir/relation_d.cc.o" "gcc" "src/constraint/CMakeFiles/cdb_constraint.dir/relation_d.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cdb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/cdb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/cdb_geometry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
