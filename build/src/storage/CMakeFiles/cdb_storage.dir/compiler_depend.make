# Empty compiler generated dependencies file for cdb_storage.
# This may be replaced when dependencies are built.
