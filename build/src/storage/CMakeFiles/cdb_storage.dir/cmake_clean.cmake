file(REMOVE_RECURSE
  "CMakeFiles/cdb_storage.dir/file.cc.o"
  "CMakeFiles/cdb_storage.dir/file.cc.o.d"
  "CMakeFiles/cdb_storage.dir/pager.cc.o"
  "CMakeFiles/cdb_storage.dir/pager.cc.o.d"
  "libcdb_storage.a"
  "libcdb_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdb_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
