file(REMOVE_RECURSE
  "libcdb_storage.a"
)
