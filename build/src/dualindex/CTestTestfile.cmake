# CMake generated Testfile for 
# Source directory: /root/repo/src/dualindex
# Build directory: /root/repo/build/src/dualindex
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
