file(REMOVE_RECURSE
  "libcdb_dualindex.a"
)
