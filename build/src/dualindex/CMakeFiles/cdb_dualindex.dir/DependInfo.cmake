
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dualindex/app_query.cc" "src/dualindex/CMakeFiles/cdb_dualindex.dir/app_query.cc.o" "gcc" "src/dualindex/CMakeFiles/cdb_dualindex.dir/app_query.cc.o.d"
  "/root/repo/src/dualindex/ddim_index.cc" "src/dualindex/CMakeFiles/cdb_dualindex.dir/ddim_index.cc.o" "gcc" "src/dualindex/CMakeFiles/cdb_dualindex.dir/ddim_index.cc.o.d"
  "/root/repo/src/dualindex/dual_index.cc" "src/dualindex/CMakeFiles/cdb_dualindex.dir/dual_index.cc.o" "gcc" "src/dualindex/CMakeFiles/cdb_dualindex.dir/dual_index.cc.o.d"
  "/root/repo/src/dualindex/slope_set.cc" "src/dualindex/CMakeFiles/cdb_dualindex.dir/slope_set.cc.o" "gcc" "src/dualindex/CMakeFiles/cdb_dualindex.dir/slope_set.cc.o.d"
  "/root/repo/src/dualindex/stabbing_index.cc" "src/dualindex/CMakeFiles/cdb_dualindex.dir/stabbing_index.cc.o" "gcc" "src/dualindex/CMakeFiles/cdb_dualindex.dir/stabbing_index.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cdb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/cdb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/cdb_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/constraint/CMakeFiles/cdb_constraint.dir/DependInfo.cmake"
  "/root/repo/build/src/btree/CMakeFiles/cdb_btree.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/cdb_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
