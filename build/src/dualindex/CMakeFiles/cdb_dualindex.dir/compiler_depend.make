# Empty compiler generated dependencies file for cdb_dualindex.
# This may be replaced when dependencies are built.
