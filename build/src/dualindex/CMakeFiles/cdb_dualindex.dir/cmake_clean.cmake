file(REMOVE_RECURSE
  "CMakeFiles/cdb_dualindex.dir/app_query.cc.o"
  "CMakeFiles/cdb_dualindex.dir/app_query.cc.o.d"
  "CMakeFiles/cdb_dualindex.dir/ddim_index.cc.o"
  "CMakeFiles/cdb_dualindex.dir/ddim_index.cc.o.d"
  "CMakeFiles/cdb_dualindex.dir/dual_index.cc.o"
  "CMakeFiles/cdb_dualindex.dir/dual_index.cc.o.d"
  "CMakeFiles/cdb_dualindex.dir/slope_set.cc.o"
  "CMakeFiles/cdb_dualindex.dir/slope_set.cc.o.d"
  "CMakeFiles/cdb_dualindex.dir/stabbing_index.cc.o"
  "CMakeFiles/cdb_dualindex.dir/stabbing_index.cc.o.d"
  "libcdb_dualindex.a"
  "libcdb_dualindex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdb_dualindex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
