file(REMOVE_RECURSE
  "libcdb_db.a"
)
