# Empty compiler generated dependencies file for cdb_db.
# This may be replaced when dependencies are built.
