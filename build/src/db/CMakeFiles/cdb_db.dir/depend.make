# Empty dependencies file for cdb_db.
# This may be replaced when dependencies are built.
