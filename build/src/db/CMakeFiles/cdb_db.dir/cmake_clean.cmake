file(REMOVE_RECURSE
  "CMakeFiles/cdb_db.dir/database.cc.o"
  "CMakeFiles/cdb_db.dir/database.cc.o.d"
  "libcdb_db.a"
  "libcdb_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdb_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
