file(REMOVE_RECURSE
  "CMakeFiles/lp2d_test.dir/lp2d_test.cc.o"
  "CMakeFiles/lp2d_test.dir/lp2d_test.cc.o.d"
  "lp2d_test"
  "lp2d_test.pdb"
  "lp2d_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lp2d_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
