# Empty compiler generated dependencies file for lp2d_test.
# This may be replaced when dependencies are built.
