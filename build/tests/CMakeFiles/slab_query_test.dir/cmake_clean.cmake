file(REMOVE_RECURSE
  "CMakeFiles/slab_query_test.dir/slab_query_test.cc.o"
  "CMakeFiles/slab_query_test.dir/slab_query_test.cc.o.d"
  "slab_query_test"
  "slab_query_test.pdb"
  "slab_query_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slab_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
