# Empty dependencies file for float_cmp_test.
# This may be replaced when dependencies are built.
