file(REMOVE_RECURSE
  "CMakeFiles/float_cmp_test.dir/float_cmp_test.cc.o"
  "CMakeFiles/float_cmp_test.dir/float_cmp_test.cc.o.d"
  "float_cmp_test"
  "float_cmp_test.pdb"
  "float_cmp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/float_cmp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
