file(REMOVE_RECURSE
  "CMakeFiles/polyhedron2d_test.dir/polyhedron2d_test.cc.o"
  "CMakeFiles/polyhedron2d_test.dir/polyhedron2d_test.cc.o.d"
  "polyhedron2d_test"
  "polyhedron2d_test.pdb"
  "polyhedron2d_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polyhedron2d_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
