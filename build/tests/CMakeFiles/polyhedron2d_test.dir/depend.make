# Empty dependencies file for polyhedron2d_test.
# This may be replaced when dependencies are built.
