# Empty compiler generated dependencies file for ddim_index_test.
# This may be replaced when dependencies are built.
