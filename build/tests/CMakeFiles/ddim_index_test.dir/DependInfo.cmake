
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ddim_index_test.cc" "tests/CMakeFiles/ddim_index_test.dir/ddim_index_test.cc.o" "gcc" "tests/CMakeFiles/ddim_index_test.dir/ddim_index_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dualindex/CMakeFiles/cdb_dualindex.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/cdb_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/btree/CMakeFiles/cdb_btree.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/cdb_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/constraint/CMakeFiles/cdb_constraint.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/cdb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/cdb_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
