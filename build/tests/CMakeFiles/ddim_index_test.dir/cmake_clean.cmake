file(REMOVE_RECURSE
  "CMakeFiles/ddim_index_test.dir/ddim_index_test.cc.o"
  "CMakeFiles/ddim_index_test.dir/ddim_index_test.cc.o.d"
  "ddim_index_test"
  "ddim_index_test.pdb"
  "ddim_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddim_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
