file(REMOVE_RECURSE
  "CMakeFiles/vertical_query_test.dir/vertical_query_test.cc.o"
  "CMakeFiles/vertical_query_test.dir/vertical_query_test.cc.o.d"
  "vertical_query_test"
  "vertical_query_test.pdb"
  "vertical_query_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vertical_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
