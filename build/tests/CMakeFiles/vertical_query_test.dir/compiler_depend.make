# Empty compiler generated dependencies file for vertical_query_test.
# This may be replaced when dependencies are built.
