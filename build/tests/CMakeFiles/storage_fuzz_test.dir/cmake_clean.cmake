file(REMOVE_RECURSE
  "CMakeFiles/storage_fuzz_test.dir/storage_fuzz_test.cc.o"
  "CMakeFiles/storage_fuzz_test.dir/storage_fuzz_test.cc.o.d"
  "storage_fuzz_test"
  "storage_fuzz_test.pdb"
  "storage_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
