# Empty dependencies file for slope_set_test.
# This may be replaced when dependencies are built.
