file(REMOVE_RECURSE
  "CMakeFiles/slope_set_test.dir/slope_set_test.cc.o"
  "CMakeFiles/slope_set_test.dir/slope_set_test.cc.o.d"
  "slope_set_test"
  "slope_set_test.pdb"
  "slope_set_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slope_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
