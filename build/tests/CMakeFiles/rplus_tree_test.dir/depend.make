# Empty dependencies file for rplus_tree_test.
# This may be replaced when dependencies are built.
