file(REMOVE_RECURSE
  "CMakeFiles/rplus_tree_test.dir/rplus_tree_test.cc.o"
  "CMakeFiles/rplus_tree_test.dir/rplus_tree_test.cc.o.d"
  "rplus_tree_test"
  "rplus_tree_test.pdb"
  "rplus_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rplus_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
