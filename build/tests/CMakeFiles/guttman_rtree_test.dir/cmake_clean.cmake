file(REMOVE_RECURSE
  "CMakeFiles/guttman_rtree_test.dir/guttman_rtree_test.cc.o"
  "CMakeFiles/guttman_rtree_test.dir/guttman_rtree_test.cc.o.d"
  "guttman_rtree_test"
  "guttman_rtree_test.pdb"
  "guttman_rtree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/guttman_rtree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
