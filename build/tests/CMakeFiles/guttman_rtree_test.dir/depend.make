# Empty dependencies file for guttman_rtree_test.
# This may be replaced when dependencies are built.
