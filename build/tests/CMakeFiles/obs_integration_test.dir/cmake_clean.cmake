file(REMOVE_RECURSE
  "CMakeFiles/obs_integration_test.dir/obs_integration_test.cc.o"
  "CMakeFiles/obs_integration_test.dir/obs_integration_test.cc.o.d"
  "obs_integration_test"
  "obs_integration_test.pdb"
  "obs_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obs_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
