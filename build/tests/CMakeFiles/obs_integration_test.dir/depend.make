# Empty dependencies file for obs_integration_test.
# This may be replaced when dependencies are built.
