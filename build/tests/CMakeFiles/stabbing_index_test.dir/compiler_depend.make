# Empty compiler generated dependencies file for stabbing_index_test.
# This may be replaced when dependencies are built.
