file(REMOVE_RECURSE
  "CMakeFiles/stabbing_index_test.dir/stabbing_index_test.cc.o"
  "CMakeFiles/stabbing_index_test.dir/stabbing_index_test.cc.o.d"
  "stabbing_index_test"
  "stabbing_index_test.pdb"
  "stabbing_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stabbing_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
