file(REMOVE_RECURSE
  "CMakeFiles/app_query_test.dir/app_query_test.cc.o"
  "CMakeFiles/app_query_test.dir/app_query_test.cc.o.d"
  "app_query_test"
  "app_query_test.pdb"
  "app_query_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
