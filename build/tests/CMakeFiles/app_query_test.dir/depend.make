# Empty dependencies file for app_query_test.
# This may be replaced when dependencies are built.
