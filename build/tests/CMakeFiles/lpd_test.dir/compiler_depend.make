# Empty compiler generated dependencies file for lpd_test.
# This may be replaced when dependencies are built.
