file(REMOVE_RECURSE
  "CMakeFiles/lpd_test.dir/lpd_test.cc.o"
  "CMakeFiles/lpd_test.dir/lpd_test.cc.o.d"
  "lpd_test"
  "lpd_test.pdb"
  "lpd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lpd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
