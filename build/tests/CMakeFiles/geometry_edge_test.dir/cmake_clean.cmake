file(REMOVE_RECURSE
  "CMakeFiles/geometry_edge_test.dir/geometry_edge_test.cc.o"
  "CMakeFiles/geometry_edge_test.dir/geometry_edge_test.cc.o.d"
  "geometry_edge_test"
  "geometry_edge_test.pdb"
  "geometry_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geometry_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
