# Empty compiler generated dependencies file for dual_surface_test.
# This may be replaced when dependencies are built.
