file(REMOVE_RECURSE
  "CMakeFiles/dual_surface_test.dir/dual_surface_test.cc.o"
  "CMakeFiles/dual_surface_test.dir/dual_surface_test.cc.o.d"
  "dual_surface_test"
  "dual_surface_test.pdb"
  "dual_surface_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dual_surface_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
