file(REMOVE_RECURSE
  "CMakeFiles/relation_d_test.dir/relation_d_test.cc.o"
  "CMakeFiles/relation_d_test.dir/relation_d_test.cc.o.d"
  "relation_d_test"
  "relation_d_test.pdb"
  "relation_d_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relation_d_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
