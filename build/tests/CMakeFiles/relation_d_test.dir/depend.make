# Empty dependencies file for relation_d_test.
# This may be replaced when dependencies are built.
